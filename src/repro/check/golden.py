"""Golden-trace regression harness (``repro check record`` / ``diff``).

Every scenario in :data:`SCENARIOS` is a fully pinned end-to-end run —
kernel, size, scheme, scale, seed, and fault schedule — executed with the
invariant checker and differential oracle enabled.  ``record`` serializes
each run's event log to a JSONL file (one header line with the scenario
parameters, one line per fault with its exact time/page/kind/stall, one
footer line with every counter and the time-budget split); ``diff``
re-runs the matrix and compares structurally against the stored files, so
*any* behavioral drift — a reordered fault, a different prefetch depth, a
nanosecond of extra stall — fails with a precise first-divergence report.

Golden files live in ``tests/golden/`` and are committed; refresh them
with ``repro check record`` only when a change is *meant* to alter
behavior, and say so in the commit message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..config import CheckSpec, FaultSpec, SimulationConfig
from ..metrics.eventlog import FaultLog

#: Directory (relative to the repo root) where golden traces live.
DEFAULT_GOLDEN_DIR = Path("tests") / "golden"

#: Format version; bump when the serialization itself changes shape.
TRACE_FORMAT = 1


@dataclass(frozen=True)
class GoldenScenario:
    """One pinned run of the scenario matrix."""

    name: str
    kernel: str
    memory_mb: int
    scheme: str
    scale: float = 1.0 / 16.0
    seed: int = 0
    faults: FaultSpec = field(default_factory=FaultSpec)
    #: Multi-hop migration path (empty = the classic home->dest run).
    path: tuple[str, ...] = ()
    hop_delays: tuple[float, ...] = ()
    #: Sustained-load cluster preset (empty = a fixed-migrant scenario).
    #: When set, ``kernel``/``memory_mb`` are ignored and the run is a
    #: seeded arrival stream under the named decentralized policy.
    preset: str = ""
    policy: str = ""
    #: Named prefetch policy (see :data:`repro.core.policy.POLICIES`);
    #: empty = the scheme's own default (AMPoM for the AMPoM scheme).
    prefetch_policy: str = ""

    def header(self) -> dict:
        header = {
            "format": TRACE_FORMAT,
            "scenario": self.name,
            "kernel": self.kernel,
            "memory_mb": self.memory_mb,
            "scheme": self.scheme,
            "scale": self.scale,
            "seed": self.seed,
            "loss_rate": self.faults.loss_rate,
            "duplicate_rate": self.faults.duplicate_rate,
            "delay_rate": self.faults.delay_rate,
            "deputy_crash_windows": [list(w) for w in self.faults.deputy_crash_windows],
        }
        if self.path:
            # Only multi-hop scenarios carry these keys, so the original
            # two-node golden files stay byte-identical.
            header["path"] = list(self.path)
            header["hop_delays"] = list(self.hop_delays)
        if self.preset:
            # Likewise: only sustained-load scenarios carry these keys.
            header["preset"] = self.preset
            header["policy"] = self.policy
        if self.prefetch_policy:
            # Same discipline again: only policy-pinned scenarios carry
            # the key, so every pre-existing golden file stays identical.
            header["prefetch_policy"] = self.prefetch_policy
        return header


#: The fixed scenario matrix: seed workloads × fault specs.  Small sizes
#: and 1/16 scale keep a full record/diff sweep within a few seconds.
SCENARIOS: tuple[GoldenScenario, ...] = (
    GoldenScenario("dgemm_ampom", "DGEMM", 115, "AMPoM"),
    GoldenScenario("stream_ampom", "STREAM", 115, "AMPoM"),
    GoldenScenario("randomaccess_ampom", "RandomAccess", 129, "AMPoM"),
    GoldenScenario("fft_ampom", "FFT", 129, "AMPoM"),
    GoldenScenario("dgemm_noprefetch", "DGEMM", 115, "NoPrefetch"),
    GoldenScenario("dgemm_openmosix", "DGEMM", 115, "openMosix"),
    GoldenScenario(
        "dgemm_ampom_lossy",
        "DGEMM",
        115,
        "AMPoM",
        seed=7,
        faults=FaultSpec(loss_rate=0.05, duplicate_rate=0.02, delay_rate=0.1, delay_s=0.005),
    ),
    GoldenScenario(
        "stream_ampom_crash",
        "STREAM",
        115,
        "AMPoM",
        seed=3,
        faults=FaultSpec(deputy_crash_windows=((0.5, 0.9),)),
    ),
    # Multi-hop re-migration (section 3.2): home -> n1 -> n2 with a
    # transit deputy left on n1 (AMPoM), a full re-ship (openMosix), and
    # a re-flush to the file server (FFA).
    GoldenScenario(
        "three_hop_ampom", "DGEMM", 115, "AMPoM",
        path=("home", "n1", "n2"), hop_delays=(0.25,),
    ),
    GoldenScenario(
        "three_hop_openmosix", "DGEMM", 115, "openMosix",
        path=("home", "n1", "n2"), hop_delays=(0.25,),
    ),
    GoldenScenario(
        "three_hop_ffa", "DGEMM", 115, "FFA",
        path=("home", "n1", "n2"), hop_delays=(0.25,),
    ),
    GoldenScenario(
        "three_hop_ampom_lossy", "DGEMM", 115, "AMPoM",
        seed=7,
        faults=FaultSpec(loss_rate=0.05, duplicate_rate=0.02, delay_rate=0.1, delay_s=0.005),
        path=("home", "n1", "n2"), hop_delays=(0.25,),
    ),
    # Mid-scale sustained load: the 32-node arrival stream under each
    # decentralized migration policy.  These pin the whole fleet path —
    # arrival draws, gossip dissemination, policy decisions, and every
    # executed migration — in one trace per policy.
    GoldenScenario(
        "cluster_32_threshold", "arrival-stream", 0, "AMPoM",
        seed=11, preset="cluster_32", policy="threshold",
    ),
    GoldenScenario(
        "cluster_32_balanced", "arrival-stream", 0, "AMPoM",
        seed=11, preset="cluster_32", policy="balanced",
    ),
    # Prefetch-policy arena members (see docs/POLICIES.md): the same
    # AMPoM-freeze runs with a non-default policy pinned by name.  These
    # pin the whole policy layer — registry resolution, the Leap stride
    # detector's trend votes, and the Linux read-ahead window doubling.
    GoldenScenario("dgemm_leap", "DGEMM", 115, "AMPoM", prefetch_policy="leap"),
    GoldenScenario(
        "randomaccess_leap", "RandomAccess", 129, "AMPoM", prefetch_policy="leap"
    ),
    GoldenScenario(
        "stream_readahead", "STREAM", 115, "AMPoM",
        prefetch_policy="linux-readahead",
    ),
)


# ----------------------------------------------------------------------
# running + serialization
# ----------------------------------------------------------------------
def _scenario_config(scenario: GoldenScenario) -> SimulationConfig:
    from ..experiments import figures

    config = figures.scaled_config(scenario.scale, seed=scenario.seed)
    if scenario.faults.active:
        config = config.with_(faults=scenario.faults)
    if scenario.prefetch_policy:
        config = config.with_(prefetch_policy=scenario.prefetch_policy)
    # Golden runs double as an invariant/oracle sweep; checks never alter
    # the recorded trace (they are pure observers).
    return config.with_(checks=CheckSpec(enabled=True))


def run_scenario(scenario: GoldenScenario, obs=None) -> list[str]:
    """Execute one scenario; return its serialized JSONL lines.

    ``obs`` optionally attaches a :class:`repro.obs.Observability` bundle
    to the run.  Tracing is a pure observer, so the returned lines must be
    byte-identical with or without it — ``repro trace golden`` gates
    exactly that.
    """
    from ..cluster.runner import MigrationRun
    from ..workloads.hpcc import hpcc_workload

    if scenario.preset:
        return _run_sustained_scenario(scenario, obs=obs)

    fault_log = FaultLog()
    workload = hpcc_workload(scenario.kernel, scenario.memory_mb, scale=scenario.scale)
    if len(scenario.path) > 2:
        from ..cluster.session import ScenarioRuntime
        from ..cluster.topology import (
            FILE_SERVER,
            MigrantSpec,
            NodeGraph,
            ScenarioSpec,
            _wants_file_server,
            make_strategy,
        )

        strategy = make_strategy(scenario.scheme)
        nodes = list(scenario.path)
        if _wants_file_server(strategy):
            nodes.append(FILE_SERVER)
        runtime = ScenarioRuntime(
            ScenarioSpec(
                graph=NodeGraph(tuple(nodes)),
                migrants=(
                    MigrantSpec(
                        workload=workload,
                        strategy=strategy,
                        path=scenario.path,
                        hop_delays=scenario.hop_delays,
                        fault_log=fault_log,
                    ),
                ),
                config=_scenario_config(scenario),
            ),
            obs=obs,
        )
        result = runtime.execute()[0]
    else:
        from ..experiments import figures

        run = MigrationRun(
            workload,
            figures.make_strategy(scenario.scheme),
            config=_scenario_config(scenario),
            fault_log=fault_log,
            obs=obs,
        )
        result = run.execute()

    lines = [json.dumps(scenario.header(), sort_keys=True)]
    for event in fault_log.events():
        lines.append(
            json.dumps(
                {
                    "t": event.time,
                    "vpn": event.vpn,
                    "kind": event.kind.value,
                    "prefetched": event.prefetched,
                    "stall": event.stall,
                },
                sort_keys=True,
            )
        )
    lines.append(
        json.dumps(
            {
                "freeze_time_s": result.freeze_time,
                "run_time_s": result.run_time,
                "wasted_pages": result.wasted_pages,
                "budget": result.budget.as_dict(),
                "counters": result.counters.as_dict(),
            },
            sort_keys=True,
        )
    )
    return lines


def _run_sustained_scenario(scenario: GoldenScenario, obs=None) -> list[str]:
    """Serialize one sustained-load preset run: header line, one line per
    migration decision, one footer with the fleet-level counters and the
    full utilization series."""
    import dataclasses

    from ..cluster.sustained import SustainedLoadDriver
    from ..cluster.topology import build_preset

    spec = build_preset(
        scenario.preset, scheme=scenario.scheme, scale=scenario.scale, seed=scenario.seed
    )
    sustained = dataclasses.replace(spec.sustained, policy=scenario.policy)
    driver = SustainedLoadDriver(spec.graph, sustained, config=_scenario_config(scenario))
    result = driver.execute(obs=obs)
    report = result.report

    lines = [json.dumps(scenario.header(), sort_keys=True)]
    for decision in report.decisions:
        lines.append(json.dumps(decision, sort_keys=True))
    lines.append(
        json.dumps(
            {
                "arrivals": report.arrivals,
                "completed": report.completed,
                "makespan_s": report.makespan,
                "migrations": report.migrations,
                "total_frozen_time_s": report.total_frozen_time,
                "utilization": [
                    [s.time, s.busy_nodes, s.mean_load, s.migrations]
                    for s in report.utilization
                ],
            },
            sort_keys=True,
        )
    )
    return lines


def record_scenarios(
    out_dir: Path | str = DEFAULT_GOLDEN_DIR,
    scenarios: Iterable[GoldenScenario] = SCENARIOS,
    jobs: int | str | None = None,
) -> list[Path]:
    """Run the matrix and write one ``<name>.jsonl`` per scenario.

    ``jobs`` fans the independent scenario runs across worker processes
    (see :func:`repro.cluster.parallel.parallel_map`); every scenario is
    fully pinned, so the recorded traces are byte-identical at any width.
    """
    from ..cluster.parallel import parallel_map

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    scenarios = list(scenarios)
    traces = parallel_map(run_scenario, scenarios, jobs=jobs)
    written: list[Path] = []
    for scenario, lines in zip(scenarios, traces):
        path = out / f"{scenario.name}.jsonl"
        path.write_text("\n".join(lines) + "\n")
        written.append(path)
    return written


# ----------------------------------------------------------------------
# structural diff
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TraceDivergence:
    """First structural difference found in one scenario's trace."""

    scenario: str
    line: int
    reason: str

    def __str__(self) -> str:
        return f"{self.scenario}:{self.line}: {self.reason}"


def _diff_lines(scenario: str, golden: list[str], fresh: list[str]) -> TraceDivergence | None:
    for i, (a, b) in enumerate(zip(golden, fresh), start=1):
        if a == b:
            continue
        try:
            obj_a, obj_b = json.loads(a), json.loads(b)
        except json.JSONDecodeError:
            return TraceDivergence(scenario, i, f"unparseable line: {a!r} vs {b!r}")
        keys = sorted(set(obj_a) | set(obj_b))
        for key in keys:
            va, vb = obj_a.get(key, "<absent>"), obj_b.get(key, "<absent>")
            if va != vb:
                return TraceDivergence(
                    scenario, i, f"field {key!r}: golden={va!r} current={vb!r}"
                )
        return TraceDivergence(scenario, i, "lines differ only in key order")
    if len(golden) != len(fresh):
        return TraceDivergence(
            scenario,
            min(len(golden), len(fresh)) + 1,
            f"trace length changed: golden has {len(golden)} lines, "
            f"current run has {len(fresh)}",
        )
    return None


def diff_scenarios(
    golden_dir: Path | str = DEFAULT_GOLDEN_DIR,
    scenarios: Iterable[GoldenScenario] = SCENARIOS,
    jobs: int | str | None = None,
) -> list[TraceDivergence]:
    """Re-run the matrix and structurally diff against the stored traces.

    Returns one :class:`TraceDivergence` per diverging or missing
    scenario; an empty list means no behavioral drift.  ``jobs`` fans the
    re-runs across worker processes; divergences are still reported in
    scenario order.
    """
    from ..cluster.parallel import parallel_map

    golden = Path(golden_dir)
    scenarios = list(scenarios)
    present = [s for s in scenarios if (golden / f"{s.name}.jsonl").exists()]
    fresh_by_name = dict(
        zip((s.name for s in present), parallel_map(run_scenario, present, jobs=jobs))
    )
    divergences: list[TraceDivergence] = []
    for scenario in scenarios:
        path = golden / f"{scenario.name}.jsonl"
        if not path.exists():
            divergences.append(
                TraceDivergence(
                    scenario.name, 0, f"golden trace missing: {path} (run `repro check record`)"
                )
            )
            continue
        stored = path.read_text().splitlines()
        divergence = _diff_lines(scenario.name, stored, fresh_by_name[scenario.name])
        if divergence is not None:
            divergences.append(divergence)
    return divergences


__all__ = [
    "DEFAULT_GOLDEN_DIR",
    "GoldenScenario",
    "SCENARIOS",
    "TraceDivergence",
    "diff_scenarios",
    "record_scenarios",
    "run_scenario",
]
