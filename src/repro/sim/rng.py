"""Seeded randomness helpers.

Every stochastic component draws from a :class:`numpy.random.Generator`
derived from the experiment seed through :func:`child_rng`, so that (a) runs
are exactly reproducible and (b) adding a new consumer does not perturb the
streams of existing ones (independent streams via ``spawn_key``-style
hashing of a label).
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """A root generator for an experiment seed."""
    return np.random.default_rng(seed)


def child_rng(seed: int, label: str) -> np.random.Generator:
    """An independent generator keyed by ``(seed, label)``.

    The label is hashed so stream independence does not depend on call
    order, only on the label string.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))
