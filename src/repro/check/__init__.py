"""Runtime correctness tooling for the AMPoM reproduction.

Three independent layers, all configured by
:class:`repro.config.CheckSpec` and all pure observers (a run with checks
enabled is bit-identical to the same run with checks off):

* :class:`InvariantChecker` — hooked into the simulator and the migrant
  executor; after every migration/paging/prefetch event it verifies
  page-residency conservation (each page in exactly one of
  MAPPED/BUFFERED/IN_FLIGHT/REMOTE, mirrored by the MPT/HPT split of
  paper section 2.2), the no-duplicate-transfer rule, virtual-clock
  monotonicity, and counter consistency.  Violations raise a structured
  :class:`repro.errors.InvariantViolation` carrying the recent event
  trace.
* :class:`DifferentialOracle` — a brute-force reference implementation of
  the AMPoM equations (eq. 1 ``S``, eq. 2/3 ``N``, outstanding-stream
  pivot selection with saved quota) cross-checked against
  :mod:`repro.core` on every dependent-zone analysis.
* The golden-trace harness (:mod:`repro.check.golden`) — records a
  deterministic JSONL event log for a fixed scenario matrix and diffs it
  structurally (``repro check record`` / ``repro check diff``), so
  behavioral drift fails CI.

See ``docs/CHECKS.md`` for the full semantics.
"""

from .golden import SCENARIOS, GoldenScenario, diff_scenarios, record_scenarios
from .invariants import CheckEvent, InvariantChecker
from .oracle import (
    DifferentialOracle,
    ref_outstanding_streams,
    ref_select_dependent_pages,
    ref_spatial_locality_score,
    ref_stride_counts,
    ref_zone_size,
)

__all__ = [
    "CheckEvent",
    "DifferentialOracle",
    "GoldenScenario",
    "InvariantChecker",
    "SCENARIOS",
    "diff_scenarios",
    "record_scenarios",
    "ref_outstanding_streams",
    "ref_select_dependent_pages",
    "ref_spatial_locality_score",
    "ref_stride_counts",
    "ref_zone_size",
]
