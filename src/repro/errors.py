"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Raised for invalid operations on the discrete-event kernel."""


class NetworkError(ReproError):
    """Raised for invalid network topology or transfer requests."""


class MemoryStateError(ReproError):
    """Raised when a page-residency transition is illegal (e.g. mapping a
    page that is already mapped, or fetching a page the origin no longer
    holds)."""


class MigrationError(ReproError):
    """Raised when a migration cannot be performed (e.g. migrating a
    process that is already remote)."""


class ConfigurationError(ReproError):
    """Raised for inconsistent user-supplied configuration."""


class ProcessLostError(MigrationError):
    """Raised when a whole-node crash kills a migrated process: the node
    under the migrant died, or the home node crashed and took the deputy
    (openMosix's home dependency) with it.  The scenario runtime catches
    this and tears the process's ledgers down instead of failing the run."""


class FaultInjectionError(ReproError):
    """Raised for invalid use of the fault-injection subsystem (e.g.
    wrapping a link that already carried traffic, or injecting faults
    into a scheme whose page service cannot retransmit)."""


class InvariantViolation(ReproError):
    """Raised by the :mod:`repro.check` runtime checker when the simulated
    system breaks one of the paper's structural invariants (page-residency
    conservation, duplicate transfers, clock monotonicity, counter
    consistency) or when the differential oracle disagrees with the
    production AMPoM implementation.

    The exception is structured: ``invariant`` names the broken rule,
    ``detail`` describes the offending state, and ``trace`` carries the
    most recent checker events (newest last) so a violation deep in a long
    run is diagnosable without re-running it.
    """

    def __init__(self, invariant: str, detail: str, trace: tuple = ()) -> None:
        self.invariant = invariant
        self.detail = detail
        self.trace = tuple(trace)
        lines = [f"[{invariant}] {detail}"]
        if self.trace:
            lines.append("recent events (oldest first):")
            lines.extend(f"  {event}" for event in self.trace)
        super().__init__("\n".join(lines))
