"""A link direction that consults a :class:`FaultPlan` on every message.

``LossyDirection`` is a drop-in :class:`repro.net.link.Direction`: it keeps
the exact serialization/latency model and byte accounting of the base
class and layers fault semantics on top:

* **loss** — the message occupies its wire time (the frame is dropped
  downstream of the sender) but never arrives: the arrival time is
  ``math.inf``;
* **flap** — during a scheduled link-down window nothing transmits at
  all: the arrival is ``math.inf`` and no bytes are accounted;
* **duplication** — a second copy occupies the wire; if the original is
  also lost, the duplicate delivers (loss and duplication are drawn
  independently, like frame loss on a retransmitting NIC);
* **delay** — the arrival is pushed back by the configured extra delay.

An infinite arrival time is how "this message will never arrive" flows
through the simulation: the deputy ignores requests that never arrive and
the migrant's retransmission timer eventually fires on replies that never
arrive.
"""

from __future__ import annotations

import math

from ..config import NetworkSpec
from ..errors import FaultInjectionError
from ..net.link import Direction
from ..net.network import Network
from .log import FaultEventKind
from .plan import FaultPlan


class LossyDirection(Direction):
    """One direction of a duplex link subject to a fault plan."""

    def __init__(self, spec: NetworkSpec, name: str, plan: FaultPlan) -> None:
        super().__init__(spec, name=name)
        self.plan = plan
        self.dropped_messages = 0
        self.flap_dropped_messages = 0
        self.duplicated_messages = 0
        self.delayed_messages = 0

    def _log(self, now: float, kind: FaultEventKind, detail: str = "") -> None:
        if self.plan.log is not None:
            self.plan.log.record(now, kind, channel=self.name, detail=detail)

    def transfer(self, payload_bytes: int, now: float) -> float:
        if self.plan.link_down(now):
            self.flap_dropped_messages += 1
            self._log(now, FaultEventKind.FLAP_DROP)
            return math.inf
        decision = self.plan.draw(self.name, now)
        arrival = super().transfer(payload_bytes, now)
        if decision.duplicate:
            # The duplicate occupies the wire too; it trails the original.
            dup_arrival = super().transfer(payload_bytes, now)
            self.duplicated_messages += 1
            self._log(now, FaultEventKind.DUPLICATE)
        if decision.drop:
            self.dropped_messages += 1
            self._log(now, FaultEventKind.DROP)
            # If a duplicate was made, it survives the original's loss.
            arrival = dup_arrival if decision.duplicate else math.inf
        if decision.extra_delay > 0.0 and not math.isinf(arrival):
            arrival += decision.extra_delay
            self.delayed_messages += 1
            self._log(now, FaultEventKind.DELAY, detail=f"{decision.extra_delay:g}s")
        return arrival


def install_lossy_link(network: Network, a: str, b: str, plan: FaultPlan) -> None:
    """Replace both directions of the ``a``<->``b`` link with lossy ones.

    Must run before the link carries any traffic (the wrapper starts with
    fresh channel state).
    """
    link = network.link_between(a, b)
    for src, dst in ((a, b), (b, a)):
        old = link.direction(src, dst)
        if old.total_messages:
            raise FaultInjectionError(
                f"cannot inject faults into {old.name}: it already carried traffic"
            )
        link.replace_direction(src, dst, LossyDirection(link.spec, old.name, plan))
