"""The deputy: the origin-side remnant of a migrated process.

Paper section 2.2: after migration "the original process instance will be
switched to a 'deputy' process which only answers remote paging requests
and executes system calls on behalf of the migrant".  The deputy owns the
home page table; when it ships a page it deletes the origin copy.

The deputy is modelled as a deterministic server: a request arriving at
time ``a`` starts service at ``max(a, busy_until)``, pays a per-request
cost plus a per-page lookup cost, and streams the pages onto the
origin -> destination channel in order (demand page first), which is what
produces the pipelining effect of section 5.4.

Reliability (the fault-injection PR): the deputy is *idempotent*.  A page
appearing in both the demand and prefetch list of one message is served
once (demand wins) and counted.  Under a :class:`repro.faults.FaultPlan`
the deputy keeps a bounded replay cache of recently released pages so a
retransmitted request re-sends pages whose earlier reply was lost instead
of raising "origin no longer stores it", and it silently ignores requests
arriving inside a scheduled crash window (its state survives the
restart).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import TYPE_CHECKING, Sequence

from ..config import HardwareSpec
from ..errors import MemoryStateError
from ..mem.page_table import HomePageTable
from ..net.link import Direction
from ..obs.spans import DEPUTY_TRACK

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan

#: How many request sequence IDs the deputy remembers for dedup counting.
SEQ_CACHE_SIZE = 1024


class Deputy:
    """Remote paging / syscall server on the origin node."""

    def __init__(
        self,
        hpt: HomePageTable,
        reply_channel: Direction,
        hardware: HardwareSpec,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self.hpt = hpt
        self.reply_channel = reply_channel
        self.hardware = hardware
        self.fault_plan = fault_plan
        self.busy_until = 0.0
        self.requests_served = 0
        self.pages_served = 0
        self.syscalls_served = 0
        #: Pages deduplicated out of one message (demand beat prefetch).
        self.duplicate_page_requests = 0
        #: Requests recognised as retransmissions of an already-served seq.
        self.duplicate_requests = 0
        #: Pages re-sent from the replay cache after their release.
        self.replayed_pages = 0
        #: Requests ignored because the deputy was crashed on arrival.
        self.requests_ignored = 0
        self._seen_seqs: OrderedDict[int, None] = OrderedDict()
        self._seen_syscall_seqs: OrderedDict[int, None] = OrderedDict()
        # Recently released pages, re-sendable on retransmission.  Only
        # maintained under fault injection; bounded by the fault spec.
        self._replay_pages: OrderedDict[int, None] = OrderedDict()
        self._replay_capacity = (
            fault_plan.spec.replay_cache_pages if fault_plan is not None else 0
        )
        #: Optional :class:`repro.obs.Observability` bundle (set by the
        #: runner on traced runs).  Pure observer — serve spans and queue
        #: metrics only; None on default runs.
        self.obs = None
        # Histogram handles and the serve-span recorder, resolved on
        # first serve (see _trace_serve).
        self._h_queue_wait = None
        self._h_batch_pages = None
        self._rec_serve = None
        #: Optional whole-node outage predicate ``f(t) -> bool`` wired by
        #: the scenario runtime when a :class:`repro.faults.NodeFaultPlan`
        #: is active.  Unlike a deputy crash window (the deputy pauses and
        #: its state survives), a node outage means the host is dark: the
        #: deputy ignores everything that arrives while it holds, and —
        #: because the closure also captures the deputy's birth time — it
        #: stays dead after a crash even once the node restarts.
        self.node_outage = None
        #: Fallback :class:`repro.faults.FaultInjectionLog` for node-outage
        #: ignores when no FaultPlan (and hence no plan-attached log) exists.
        self.node_log = None

    # ------------------------------------------------------------------
    def _trace_serve(
        self, arrival: float, start: float, end: float, pages: int, seq: int | None
    ) -> None:
        """Record one serve span + queue-wait sample (obs is armed)."""
        obs = self.obs
        if obs.tracer is not None:
            if seq is None:
                rec = self._rec_serve
                if rec is None:
                    rec = self._rec_serve = obs.tracer.span_site(
                        DEPUTY_TRACK, "serve", arg="pages"
                    )
                rec(start, end - start, pages)
            else:
                obs.tracer.complete(
                    DEPUTY_TRACK, "serve", start, end - start, pages=pages, seq=seq
                )
        if obs.metrics is not None:
            h = self._h_queue_wait
            if h is None:
                h = self._h_queue_wait = obs.metrics.histogram(
                    "deputy_queue_wait_s"
                )
                self._h_batch_pages = obs.metrics.histogram("deputy_batch_pages")
            h.observe(start - arrival)
            self._h_batch_pages.observe(float(pages))

    # ------------------------------------------------------------------
    def _down_at(self, t: float) -> bool:
        if self.fault_plan is not None and self.fault_plan.deputy_down(t):
            return True
        return self.node_outage is not None and self.node_outage(t)

    def _log_ignored(self, t: float, detail: str) -> None:
        self.requests_ignored += 1
        log = None
        if self.fault_plan is not None and self.fault_plan.log is not None:
            log = self.fault_plan.log
        elif self.node_log is not None:
            log = self.node_log
        if log is not None:
            from ..faults.log import FaultEventKind

            log.record(t, FaultEventKind.CRASH_IGNORE, channel="deputy", detail=detail)

    def _remember_released(self, vpn: int) -> None:
        if self._replay_capacity <= 0:
            return
        self._replay_pages[vpn] = None
        self._replay_pages.move_to_end(vpn)
        while len(self._replay_pages) > self._replay_capacity:
            self._replay_pages.popitem(last=False)

    @staticmethod
    def _remember_seq(cache: OrderedDict, seq: int) -> bool:
        """Record ``seq``; returns True if it was already known."""
        if seq in cache:
            cache.move_to_end(seq)
            return True
        cache[seq] = None
        while len(cache) > SEQ_CACHE_SIZE:
            cache.popitem(last=False)
        return False

    # ------------------------------------------------------------------
    def serve_pages(
        self,
        demand: Sequence[int],
        prefetch: Sequence[int],
        request_arrival: float,
        seq: int | None = None,
    ) -> dict[int, float]:
        """Process one paging request; return each page's arrival time at
        the migrant.

        ``demand`` pages are served first so a blocked process resumes as
        soon as possible; ``prefetch`` pages follow in request order.  A
        page listed in both is served once (demand wins).  Every freshly
        served page is deleted from the origin (HPT release); a page
        already released is re-sent from the replay cache when the request
        carries a sequence ID (a retransmission), and is an error
        otherwise.
        """
        if len(demand) == 1 and not prefetch:
            # The dominant request shape — one demand page, nothing else —
            # takes a scalar path: no dedup possible, no page list to
            # build, and the reply goes out as one transfer() call.  The
            # arithmetic is the exact per-page sequence of the general
            # path below, so arrival times are bit-identical.
            vpn = demand[0]
            if math.isinf(request_arrival):
                return {vpn: math.inf}
            if self._down_at(request_arrival):
                self._log_ignored(request_arrival, "pages=1")
                return {vpn: math.inf}
            if seq is not None and self._remember_seq(self._seen_seqs, seq):
                self.duplicate_requests += 1
            hw = self.hardware
            start = max(request_arrival, self.busy_until)
            clock = start + hw.deputy_request_time
            if vpn in self.hpt:
                self.hpt.release(vpn)
                if self._replay_capacity > 0:
                    self._remember_released(vpn)
                self.pages_served += 1
            elif seq is not None and vpn in self._replay_pages:
                self.replayed_pages += 1
            else:
                raise MemoryStateError(
                    f"page {vpn} requested but the origin no longer stores it"
                )
            clock += hw.deputy_page_time
            self.busy_until = clock
            self.requests_served += 1
            if self.obs is not None:
                self._trace_serve(request_arrival, start, clock, 1, seq)
            end = self.reply_channel.transfer(
                hw.page_size + hw.remote_paging_overhead_bytes, clock
            )
            return {vpn: end}
        if len(demand) <= 1 and not prefetch:
            # Empty or single-demand without prefetch: no duplicate possible.
            ordered = list(demand)
        else:
            ordered = []
            seen: set[int] = set()
            for vpn in list(demand) + list(prefetch):
                if vpn in seen:
                    self.duplicate_page_requests += 1
                    continue
                seen.add(vpn)
                ordered.append(vpn)

        if math.isinf(request_arrival):
            # The request was lost in the network: the deputy never saw it.
            return {vpn: math.inf for vpn in ordered}
        if self._down_at(request_arrival):
            self._log_ignored(request_arrival, f"pages={len(ordered)}")
            return {vpn: math.inf for vpn in ordered}

        if seq is not None and self._remember_seq(self._seen_seqs, seq):
            self.duplicate_requests += 1

        hw = self.hardware
        start = max(request_arrival, self.busy_until)
        clock = start + hw.deputy_request_time
        page_dt = hw.deputy_page_time
        hpt = self.hpt
        remember = self._replay_capacity > 0
        served = 0
        release_times: list[float] = []
        for vpn in ordered:
            if vpn in hpt:
                hpt.release(vpn)
                if remember:
                    self._remember_released(vpn)
                served += 1
            elif seq is not None and vpn in self._replay_pages:
                self.replayed_pages += 1
            else:
                raise MemoryStateError(
                    f"page {vpn} requested but the origin no longer stores it"
                )
            clock += page_dt
            release_times.append(clock)
        self.pages_served += served
        self.busy_until = clock
        self.requests_served += 1
        if self.obs is not None:
            self._trace_serve(request_arrival, start, clock, len(ordered), seq)
        # One batched serialization pass over the reply channel — same
        # per-page arithmetic as transfer(), paid for once per request.
        ends = self.reply_channel.transfer_batch(
            hw.page_size + hw.remote_paging_overhead_bytes, release_times
        )
        return dict(zip(ordered, ends))

    # ------------------------------------------------------------------
    def holds_replay(self, vpn: int) -> bool:
        """True if ``vpn`` was released recently enough to be re-sendable
        from the replay cache (routing hint for multi-hop page services)."""
        return vpn in self._replay_pages

    def rebind(self, reply_channel: Direction) -> None:
        """Point the reply stream at the migrant's new location.

        Re-migration (paper section 3.2) leaves this deputy where it is —
        only the link its replies travel changes.  Its ledger, replay
        cache, and busy clock carry over untouched, so pages it still
        holds keep being served (and audited) from the same place.
        """
        self.reply_channel = reply_channel

    # ------------------------------------------------------------------
    def audit_ledger(self) -> None:
        """Verify the deputy's own page ledger (repro.check deep audit).

        The deputy is the only actor that releases HPT pages in a
        deputy-backed run, so every release must be accounted for by a
        served page, and the replay cache must respect its bound.
        """
        from ..errors import InvariantViolation

        if self.pages_served != self.hpt.released_total:
            raise InvariantViolation(
                "deputy-ledger",
                f"pages_served={self.pages_served} but the HPT recorded "
                f"{self.hpt.released_total} releases",
            )
        expected = (
            self.hpt.initial_pages
            - self.hpt.released_total
            + self.hpt.stored_total
            - self.hpt.forfeited_total
        )
        if len(self.hpt) != expected:
            raise InvariantViolation(
                "hpt-conservation",
                f"HPT holds {len(self.hpt)} pages but initial({self.hpt.initial_pages}) "
                f"- released({self.hpt.released_total}) + stored({self.hpt.stored_total}) "
                f"- forfeited({self.hpt.forfeited_total}) = {expected}",
            )
        if self._replay_capacity >= 0 and len(self._replay_pages) > self._replay_capacity:
            raise InvariantViolation(
                "replay-cache-bound",
                f"replay cache holds {len(self._replay_pages)} pages, "
                f"capacity {self._replay_capacity}",
            )

    # ------------------------------------------------------------------
    def serve_syscall(
        self,
        request_arrival: float,
        service_time: float,
        reply_payload_bytes: int = 64,
        seq: int | None = None,
    ) -> float:
        """Execute a forwarded system call; return the reply's arrival time
        at the migrant (the home-dependency cost of section 7).

        A retransmitted syscall (known ``seq``) re-sends the reply without
        re-executing the call, keeping forwarded syscalls exactly-once.
        """
        if service_time < 0:
            raise MemoryStateError(f"service_time must be non-negative: {service_time}")
        if math.isinf(request_arrival):
            return math.inf
        if self._down_at(request_arrival):
            self._log_ignored(request_arrival, "syscall")
            return math.inf
        start = max(request_arrival, self.busy_until)
        if seq is not None and self._remember_seq(self._seen_syscall_seqs, seq):
            # Replay: just re-send the cached reply.
            self.duplicate_requests += 1
            done = start + self.hardware.deputy_request_time
            self.busy_until = done
            if self.obs is not None and self.obs.tracer is not None:
                self.obs.tracer.complete(
                    DEPUTY_TRACK, "syscall_replay", start, done - start
                )
            return self.reply_channel.transfer(reply_payload_bytes, done)
        done = start + self.hardware.deputy_request_time + service_time
        self.busy_until = done
        self.syscalls_served += 1
        if self.obs is not None and self.obs.tracer is not None:
            self.obs.tracer.complete(DEPUTY_TRACK, "syscall", start, done - start)
        return self.reply_channel.transfer(reply_payload_bytes, done)
