"""Unit tests for the STREAM trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import mib
from repro.workloads.base import TraceChunk
from repro.workloads.stream import StreamWorkload


def collect(workload):
    workload.setup()
    return [c for c in workload.trace() if isinstance(c, TraceChunk)]


def test_three_equal_arrays():
    w = StreamWorkload(mib(3))
    space = w.setup()
    for name in ("a", "b", "c"):
        assert space.region(name).n_pages == w.pages_per_array


def test_trace_covers_all_arrays():
    w = StreamWorkload(mib(1), iterations=1)
    chunks = collect(w)
    touched = set(np.concatenate([c.pages for c in chunks]).tolist())
    space = w.address_space
    for name in ("a", "b", "c"):
        region = space.region(name)
        assert set(range(region.start_page, region.end_page)) <= touched


def test_reference_count_formula():
    w = StreamWorkload(mib(1), iterations=3)
    chunks = collect(w)
    total_refs = sum(len(c) for c in chunks)
    # per iteration: copy 2 + scale 2 + add 3 + triad 3 operand sweeps
    assert total_refs == 3 * 10 * w.pages_per_array


def test_interleaving_shape():
    """The add operation interleaves three streams page by page."""
    w = StreamWorkload(mib(1), iterations=1, chunk_pages=64)
    chunks = collect(w)
    # First chunk belongs to the copy op: a and c interleaved.
    first = chunks[0].pages
    a0 = w.address_space.region("a").start_page
    c0 = w.address_space.region("c").start_page
    assert first[0] == a0 and first[1] == c0
    assert first[2] == a0 + 1 and first[3] == c0 + 1


def test_compute_estimate_matches_trace():
    w = StreamWorkload(mib(1), iterations=2)
    w.setup()
    traced = sum(c.total_compute for c in w.trace())
    assert w.total_compute_estimate() == pytest.approx(traced)


def test_iterations_validation():
    with pytest.raises(ConfigurationError):
        StreamWorkload(mib(1), iterations=0)


def test_chunking_respects_chunk_pages():
    w = StreamWorkload(mib(4), iterations=1, chunk_pages=32)
    chunks = collect(w)
    # Chunks hold at most chunk_pages * operands references.
    assert max(len(c) for c in chunks) <= 32 * 3
