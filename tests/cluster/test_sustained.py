"""Determinism-at-scale tests for the sustained-load driver.

Everything here pins the same property from different angles: a sustained
run is a pure function of (spec, seed) — byte-identical across repeats,
across ``parallel_map`` fan-out widths, and per policy.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.loadgen import ArrivalSpec
from repro.cluster.parallel import parallel_map
from repro.cluster.policy import POLICIES
from repro.cluster.sustained import SustainedLoadDriver, run_sustained
from repro.cluster.topology import NodeGraph, SustainedSpec, build_preset
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.units import mib


def _small_spec(policy="threshold"):
    """A 4-node sustained scenario small enough for per-policy sweeps."""
    arrivals = ArrivalSpec(
        rate_hz=0.5,
        horizon_s=4.0,
        mean_lifetime_s=1.5,
        max_lifetime_s=5.0,
        memory_bytes_choices=(mib(1) // 4, mib(1) // 2),
        hotspot=("a",),
        hotspot_rate_hz=3.0,
    )
    return (
        NodeGraph(("a", "b", "c", "d")),
        SustainedSpec(arrivals=arrivals, policy=policy),
    )


def _run_small(policy="threshold", seed=5):
    graph, sustained = _small_spec(policy)
    config = SimulationConfig(seed=seed)
    return SustainedLoadDriver(graph, sustained, config=config).execute()


def _cluster_32_json(seed: int) -> str:
    """Module-level so ``parallel_map`` can pickle it into fork workers."""
    return run_sustained(build_preset("cluster_32", seed=seed)).to_json()


# ----------------------------------------------------------------------
# byte-identity
# ----------------------------------------------------------------------
def test_cluster_32_run_byte_identical_across_repeats():
    assert _cluster_32_json(7) == _cluster_32_json(7)


def test_cluster_32_sequential_matches_forked():
    """The same seeded runs serialize identically whether executed in
    this process or fanned out across fork workers."""
    seeds = [7, 7]
    sequential = parallel_map(_cluster_32_json, seeds, jobs=1)
    forked = parallel_map(_cluster_32_json, seeds, jobs=2)
    assert sequential == forked
    assert sequential[0] == sequential[1]


def test_different_seeds_draw_different_streams():
    assert _cluster_32_json(7) != _cluster_32_json(8)


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_policy_decision_log_deterministic_per_seed(policy):
    first = _run_small(policy)
    second = _run_small(policy)
    assert first.report.decisions == second.report.decisions
    assert first.to_json() == second.to_json()


# ----------------------------------------------------------------------
# report shape + plumbing
# ----------------------------------------------------------------------
def test_report_reflects_spec_and_stream():
    res = _run_small("threshold", seed=5)
    report = res.report
    assert report.nodes == 4
    assert report.policy == "threshold"
    assert report.seed == 5
    assert report.arrivals > 0
    assert report.completed == report.arrivals
    assert report.makespan > 0
    assert report.migrations == len(report.decisions)
    assert report.utilization, "the sampler must record at least one tick"
    times = [s.time for s in report.utilization]
    assert times == sorted(times)
    # Cumulative migration counts never decrease.
    migs = [s.migrations for s in report.utilization]
    assert all(b >= a for a, b in zip(migs, migs[1:]))


def test_policy_override_changes_behavior():
    """Swapping the policy on an identical spec+seed changes the decision
    log (threshold balances outward; defrag drains inward)."""
    threshold = _run_small("threshold")
    defrag = _run_small("defrag")
    assert threshold.report.decisions != defrag.report.decisions


def test_run_sustained_requires_sustained_section():
    spec = build_preset("pair")
    with pytest.raises(ConfigurationError):
        run_sustained(spec)


def test_driver_requires_two_worker_nodes():
    from repro.cluster.topology import FILE_SERVER

    _, sustained = _small_spec()
    with pytest.raises(ConfigurationError):
        SustainedLoadDriver(NodeGraph(("a", FILE_SERVER)), sustained)


def test_driver_rejects_empty_stream():
    graph, sustained = _small_spec()
    empty = dataclasses.replace(
        sustained,
        arrivals=ArrivalSpec(rate_hz=0.0, horizon_s=1.0),
    )
    with pytest.raises(ConfigurationError):
        SustainedLoadDriver(graph, empty)
