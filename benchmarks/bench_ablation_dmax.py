"""Ablation: maximum analysed stride ``dmax`` (paper fixes dmax = 4).

Section 4 argues most programs show at most two-level indirection
(stride-3), so dmax = 4 captures "most sequential memory access".  Two
probes locate the sensitivity boundaries:

* **FFT** — its reordering pass interleaves a source and a destination
  stream (same-stream re-reference distance 2), so dmax = 1 collapses
  while dmax >= 2 recovers nearly all prefetching;
* **4 interleaved streams** (synthetic) — same-stream distance 4, so the
  paper's dmax = 4 is exactly the minimum that detects it, validating the
  choice against the widest pattern the evaluation contains (radix-4
  butterflies).
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.runner import MigrationRun
from repro.experiments import figures
from repro.metrics.report import format_table
from repro.migration.ampom import AmpomMigration
from repro.units import mib
from repro.workloads.synthetic import StridedWorkload

from ._common import emit

DMAXES = (1, 2, 3, 4, 8)


def _config(dmax):
    base = figures.scaled_config(figures.DEFAULT_SCALE)
    return base.with_(ampom=replace(base.ampom, dmax=dmax, min_zone_pages=0))


def _sweep():
    rows = []
    for dmax in DMAXES:
        fft = figures.run_one(
            "FFT", 129, "AMPoM", scale=figures.DEFAULT_SCALE, config=_config(dmax)
        )
        rows.append(("FFT", dmax, fft.counters.page_fault_requests, fft.total_time))
    for dmax in DMAXES:
        run = MigrationRun(
            StridedWorkload(mib(16), streams=4), AmpomMigration(), config=_config(dmax)
        )
        r = run.execute()
        rows.append(("4-streams", dmax, r.counters.page_fault_requests, r.total_time))
    return rows


def bench_ablation_dmax(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "ablation_dmax",
        format_table(["workload", "dmax", "fault requests", "total s"], rows),
    )
    fft = {d: f for w, d, f, _ in rows if w == "FFT"}
    streams4 = {d: f for w, d, f, _ in rows if w == "4-streams"}
    # FFT's reorder pass needs dmax >= 2.
    assert fft[2] < fft[1] / 4
    assert fft[4] <= fft[2] * 1.2
    # Four interleaved streams need the paper's dmax = 4.
    assert streams4[4] < streams4[3] / 4
    assert streams4[8] <= streams4[4] * 1.2
