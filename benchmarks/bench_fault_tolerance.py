"""Fault tolerance: runtime and retransmission cost across loss rates.

Sweeps the reliable remote-paging protocol over message-loss rates
{0, 0.1%, 1%, 5%} for two HPCC workloads (sequential STREAM and pointer-
chasing RandomAccess).  Reports run time, drops, timeouts, retransmits,
and wasted (written-off) pages per cell.  The zero-loss row doubles as a
regression anchor: it must match the fault-free code path exactly.

``bench_node_churn`` sweeps whole-node crash rates instead: the
contention preset under seeded random crash schedules, reporting the
survival/kill split, abort and detection counts, and mean detection
latency per rate.  The zero-rate row anchors against the fault-free
path; every cell runs with the invariant checker forced on.
"""

from __future__ import annotations

from repro.cluster.runner import MigrationRun
from repro.config import FaultSpec
from repro.experiments import figures
from repro.metrics.report import FAULT_SUMMARY_HEADERS, fault_summary_row, format_table
from repro.workloads.hpcc import hpcc_workload

from ._common import emit

SCALE = 0.03125
LOSS_RATES = (0.0, 0.001, 0.01, 0.05)
WORKLOADS = (("STREAM", 115.0), ("RandomAccess", 65.0))


def _run_cell(kernel: str, mb: float, loss_rate: float):
    config = figures.scaled_config(SCALE, seed=0)
    if loss_rate > 0.0:
        config = config.with_(faults=FaultSpec(loss_rate=loss_rate))
    run = MigrationRun(
        hpcc_workload(kernel, mb, scale=SCALE),
        figures.make_strategy("AMPoM"),
        config=config,
    )
    return run.execute()


def _sweep():
    rows = []
    clean = {}
    for kernel, mb in WORKLOADS:
        for loss in LOSS_RATES:
            result = _run_cell(kernel, mb, loss)
            if loss == 0.0:
                clean[kernel] = result
            rows.append([kernel, f"{loss:.1%}"] + fault_summary_row(result))
    return rows, clean


def bench_fault_tolerance(benchmark):
    rows, clean = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "fault_tolerance",
        format_table(["kernel", "loss"] + FAULT_SUMMARY_HEADERS, rows),
    )

    by_cell = {(r[0], r[1]): r for r in rows}
    for kernel, _mb in WORKLOADS:
        zero = by_cell[(kernel, "0.0%")]
        # Zero loss means zero reliability machinery engaged.
        assert zero[3:] == [0, 0, 0, 0, 0]
        # Loss costs time and retransmissions, monotonically in tendency:
        # the 5% cell is strictly worse than the clean run.
        worst = by_cell[(kernel, "5.0%")]
        assert worst[2] > zero[2]  # run time
        assert worst[3] > 0  # retransmits
        assert worst[5] > 0  # drops
        # Every cell completed (no hang, no MigrationError) — reaching
        # this assertion is the proof.
        assert len(rows) == len(WORKLOADS) * len(LOSS_RATES)


# ----------------------------------------------------------------------
# node churn: whole-node crash-rate sweep (docs/FAULTS.md)
# ----------------------------------------------------------------------

CRASH_RATES = (0.0, 0.5, 1.0, 2.0)
CHURN_SEEDS = (0, 1, 2)
CHURN_HEADERS = [
    "crash/s",
    "survived",
    "killed",
    "crashes",
    "aborts",
    "repairs",
    "detections",
    "mean det. lat. s",
]


def _churn_row(rate: float):
    from repro.cluster.chaos import chaos_cell

    runs = []
    for seed in CHURN_SEEDS:
        run, violation = chaos_cell("contention", "AMPoM", seed=seed, crash_rate_hz=rate)
        assert violation is None, f"invariant violation at rate={rate} seed={seed}"
        runs.append(run)
    detections = sum(r.detections for r in runs)
    latency_total = sum(r.mean_detection_latency_s * r.detections for r in runs)
    return [
        f"{rate:.2f}",
        sum(1 for r in runs if r.survived),
        sum(1 for r in runs if r.outcome == "killed"),
        sum(r.crashes for r in runs),
        sum(r.migration_aborts for r in runs),
        sum(r.chain_repairs for r in runs),
        detections,
        f"{latency_total / detections:.4f}" if detections else "0.0000",
    ]


def _churn_sweep():
    return [_churn_row(rate) for rate in CRASH_RATES]


def bench_node_churn(benchmark):
    rows = benchmark.pedantic(_churn_sweep, rounds=1, iterations=1)
    emit("node_churn", format_table(CHURN_HEADERS, rows))

    zero = rows[0]
    # A zero crash rate draws no crash schedule at all: every run
    # survives and the failure machinery never engages.
    assert zero[1] == len(CHURN_SEEDS)
    assert zero[2:7] == [0, 0, 0, 0, 0]
    # The heaviest churn actually crashes nodes, and survival at the top
    # rate never beats the crash-free anchor.
    worst = rows[-1]
    assert worst[3] > 0
    assert worst[1] <= zero[1]
    # Crashes under the heaviest churn are actually *detected* (probe
    # timeout escalation), with a positive mean latency.
    assert worst[6] > 0
    assert float(worst[7]) > 0.0
    # Every cell completed with the checker on — reaching here proves
    # zero invariant violations across the sweep.
    assert len(rows) == len(CRASH_RATES)


# Also expose the fault-free vs fault-injected comparison for a clean-run
# identity check usable without the benchmark harness.
def verify_zero_loss_identity():
    """The loss_rate=0 sweep cell is bit-identical to the seed path."""
    kernel, mb = WORKLOADS[0]
    a = _run_cell(kernel, mb, 0.0).to_dict()
    config = figures.scaled_config(SCALE, seed=0)
    b = (
        MigrationRun(
            hpcc_workload(kernel, mb, scale=SCALE),
            figures.make_strategy("AMPoM"),
            config=config,
        )
        .execute()
        .to_dict()
    )
    return a == b
