"""Unit tests for the synthetic workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import mib
from repro.workloads.base import Syscall, TraceChunk
from repro.workloads.synthetic import (
    AllocatingWorkload,
    SequentialWorkload,
    StridedWorkload,
    UniformRandomWorkload,
)


class TestSequential:
    def test_sweeps_in_order(self):
        w = SequentialWorkload(4096 * 10, sweeps=2)
        w.setup()
        pages = np.concatenate([c.pages for c in w.trace() if isinstance(c, TraceChunk)])
        start = w.address_space.region("data").start_page
        expected = np.tile(np.arange(start, start + 10), 2)
        assert np.array_equal(pages, expected)

    def test_syscall_emitted_per_sweep(self):
        w = SequentialWorkload(
            4096 * 4, sweeps=3, syscall_every_sweep=Syscall(service_time=0.001)
        )
        w.setup()
        syscalls = [e for e in w.trace() if isinstance(e, Syscall)]
        assert len(syscalls) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialWorkload(4096, sweeps=0)


class TestUniformRandom:
    def test_reference_count_default(self):
        w = UniformRandomWorkload(4096 * 100)
        w.setup()
        refs = np.concatenate([c.pages for c in w.trace()])
        assert len(refs) == 2 * w.n_pages

    def test_explicit_reference_count(self):
        w = UniformRandomWorkload(4096 * 100, n_references=55)
        w.setup()
        assert sum(len(c) for c in w.trace()) == 55

    def test_in_bounds(self):
        w = UniformRandomWorkload(4096 * 50)
        w.setup()
        refs = np.concatenate([c.pages for c in w.trace()])
        region = w.address_space.region("data")
        assert refs.min() >= region.start_page and refs.max() < region.end_page


class TestStrided:
    def test_streams_interleaved(self):
        w = StridedWorkload(4096 * 90, streams=3, chunk_pages=30)
        w.setup()
        first = next(iter(w.trace())).pages
        seg = w.n_pages // 3
        start = w.address_space.region("data").start_page
        assert first[0] == start
        assert first[1] == start + seg
        assert first[2] == start + 2 * seg
        assert first[3] == start + 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StridedWorkload(4096, streams=0)


class TestAllocating:
    def test_fresh_pages_excluded_from_premigration(self):
        w = AllocatingWorkload(mib(1), fresh_fraction=0.5)
        w.setup()
        pre = w.premigration_pages()
        fresh = w.address_space.region("fresh")
        assert pre is not None
        assert not any(vpn in pre for vpn in range(fresh.start_page, fresh.end_page))
        old = w.address_space.region("old")
        assert all(vpn in pre for vpn in range(old.start_page, old.end_page))

    def test_trace_touches_old_then_fresh(self):
        w = AllocatingWorkload(mib(1))
        w.setup()
        refs = np.concatenate([c.pages for c in w.trace()])
        fresh = w.address_space.region("fresh")
        first_fresh = np.argmax(refs >= fresh.start_page)
        assert np.all(refs[:first_fresh] < fresh.start_page)

    def test_creates_pages_flag(self):
        assert AllocatingWorkload(mib(1)).creates_pages

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AllocatingWorkload(mib(1), fresh_fraction=0.0)
