"""Unit tests for the link model (serialization, FIFO, counters)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import NetworkSpec
from repro.errors import NetworkError
from repro.net.link import Direction, Link


def spec(bw=1e6, lat=0.01, msg=0, page=0):
    return NetworkSpec(
        bandwidth_bps=bw,
        latency_s=lat,
        per_message_overhead_bytes=msg,
        per_page_overhead_bytes=page,
    )


class TestDirection:
    def test_arrival_is_serialization_plus_latency(self):
        d = Direction(spec())
        # 1000 bytes at 1e6 B/s = 1 ms serialization + 10 ms latency.
        assert d.transfer(1000, now=0.0) == pytest.approx(0.011)

    def test_fifo_serialization_queues_back_to_back(self):
        d = Direction(spec())
        a1 = d.transfer(1000, now=0.0)
        a2 = d.transfer(1000, now=0.0)
        assert a2 - a1 == pytest.approx(0.001)  # one serialization apart

    def test_idle_gap_is_not_queued(self):
        d = Direction(spec())
        d.transfer(1000, now=0.0)
        # Submitted after the channel is idle again.
        a = d.transfer(1000, now=5.0)
        assert a == pytest.approx(5.011)

    def test_message_overhead_added(self):
        d = Direction(spec(msg=500))
        assert d.transfer(500, now=0.0) == pytest.approx(0.001 + 0.01)

    def test_transfer_page_adds_page_overhead(self):
        d = Direction(spec(page=1000))
        arrival = d.transfer_page(1000, now=0.0)
        assert arrival == pytest.approx(0.002 + 0.01)

    def test_negative_payload_raises(self):
        d = Direction(spec())
        with pytest.raises(NetworkError):
            d.transfer(-1, now=0.0)

    def test_queuing_delay(self):
        d = Direction(spec())
        assert d.queuing_delay(0.0) == 0.0
        d.transfer(5000, now=0.0)  # busy until 5 ms
        assert d.queuing_delay(0.0) == pytest.approx(0.005)
        assert d.queuing_delay(0.004) == pytest.approx(0.001)
        assert d.queuing_delay(1.0) == 0.0

    def test_counters(self):
        d = Direction(spec(msg=10))
        d.transfer(100, now=0.0)
        d.transfer(200, now=0.0)
        assert d.total_messages == 2
        assert d.total_bytes == 320

    def test_bytes_sent_by_full_transfers(self):
        d = Direction(spec())
        d.transfer(1000, now=0.0)  # serializes over [0, 1ms]
        d.transfer(1000, now=0.0)  # [1ms, 2ms]
        assert d.bytes_sent_by(0.0005) == pytest.approx(500)
        assert d.bytes_sent_by(0.001) == pytest.approx(1000)
        assert d.bytes_sent_by(0.0015) == pytest.approx(1500)
        assert d.bytes_sent_by(10.0) == pytest.approx(2000)

    def test_bytes_sent_by_before_any_transfer(self):
        d = Direction(spec())
        assert d.bytes_sent_by(1.0) == 0.0

    def test_reconfigure_affects_future_transfers_only(self):
        d = Direction(spec())
        a1 = d.transfer(1000, now=0.0)
        d.reconfigure(bandwidth_bps=0.5e6, latency_s=0.02)
        a2 = d.transfer(1000, now=0.0)
        assert a1 == pytest.approx(0.011)
        # Starts after the first (busy until 1 ms), 2 ms serialization, 20 ms lat.
        assert a2 == pytest.approx(0.001 + 0.002 + 0.02)

    def test_reconfigure_validation(self):
        d = Direction(spec())
        with pytest.raises(NetworkError):
            d.reconfigure(0, 0.01)
        with pytest.raises(NetworkError):
            d.reconfigure(1e6, -1)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),
                st.integers(min_value=1, max_value=10**6),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_arrivals_monotone_for_monotone_submissions(self, submissions):
        """FIFO property: submissions at non-decreasing times arrive in order."""
        d = Direction(spec())
        arrivals = []
        now = 0.0
        for dt, size in submissions:
            now += dt
            arrivals.append(d.transfer(size, now=now))
        assert arrivals == sorted(arrivals)

    @given(st.integers(min_value=1, max_value=10**6), st.floats(min_value=0, max_value=100))
    def test_arrival_never_before_physics(self, size, now):
        """Causality: arrival >= now + serialization + latency."""
        d = Direction(spec())
        arrival = d.transfer(size, now=now)
        assert arrival >= now + size / d.bandwidth_bps + d.latency_s - 1e-12

    @given(st.lists(st.integers(min_value=1, max_value=10**5), min_size=1, max_size=30))
    def test_counter_equals_sum_after_drain(self, sizes):
        d = Direction(spec())
        for s in sizes:
            d.transfer(s, now=0.0)
        assert d.bytes_sent_by(1e9) == pytest.approx(sum(sizes))


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(NetworkError):
            Link("a", "a", spec())

    def test_directions_are_independent(self):
        link = Link("a", "b", spec())
        fwd = link.direction("a", "b")
        bwd = link.direction("b", "a")
        fwd.transfer(10**6, now=0.0)  # saturate a->b for 1 s
        assert bwd.queuing_delay(0.0) == 0.0

    def test_unknown_direction_raises(self):
        link = Link("a", "b", spec())
        with pytest.raises(NetworkError):
            link.direction("a", "c")

    def test_reconfigure_shapes_both_directions(self):
        link = Link("a", "b", spec())
        link.reconfigure(0.5e6, 0.002)
        assert link.direction("a", "b").bandwidth_bps == 0.5e6
        assert link.direction("b", "a").latency_s == 0.002

    def test_endpoints(self):
        assert Link("a", "b", spec()).endpoints == ("a", "b")
