"""Fault tolerance: runtime and retransmission cost across loss rates.

Sweeps the reliable remote-paging protocol over message-loss rates
{0, 0.1%, 1%, 5%} for two HPCC workloads (sequential STREAM and pointer-
chasing RandomAccess).  Reports run time, drops, timeouts, retransmits,
and wasted (written-off) pages per cell.  The zero-loss row doubles as a
regression anchor: it must match the fault-free code path exactly.
"""

from __future__ import annotations

from repro.cluster.runner import MigrationRun
from repro.config import FaultSpec
from repro.experiments import figures
from repro.metrics.report import FAULT_SUMMARY_HEADERS, fault_summary_row, format_table
from repro.workloads.hpcc import hpcc_workload

from ._common import emit

SCALE = 0.03125
LOSS_RATES = (0.0, 0.001, 0.01, 0.05)
WORKLOADS = (("STREAM", 115.0), ("RandomAccess", 65.0))


def _run_cell(kernel: str, mb: float, loss_rate: float):
    config = figures.scaled_config(SCALE, seed=0)
    if loss_rate > 0.0:
        config = config.with_(faults=FaultSpec(loss_rate=loss_rate))
    run = MigrationRun(
        hpcc_workload(kernel, mb, scale=SCALE),
        figures.make_strategy("AMPoM"),
        config=config,
    )
    return run.execute()


def _sweep():
    rows = []
    clean = {}
    for kernel, mb in WORKLOADS:
        for loss in LOSS_RATES:
            result = _run_cell(kernel, mb, loss)
            if loss == 0.0:
                clean[kernel] = result
            rows.append([kernel, f"{loss:.1%}"] + fault_summary_row(result))
    return rows, clean


def bench_fault_tolerance(benchmark):
    rows, clean = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "fault_tolerance",
        format_table(["kernel", "loss"] + FAULT_SUMMARY_HEADERS, rows),
    )

    by_cell = {(r[0], r[1]): r for r in rows}
    for kernel, _mb in WORKLOADS:
        zero = by_cell[(kernel, "0.0%")]
        # Zero loss means zero reliability machinery engaged.
        assert zero[3:] == [0, 0, 0, 0, 0]
        # Loss costs time and retransmissions, monotonically in tendency:
        # the 5% cell is strictly worse than the clean run.
        worst = by_cell[(kernel, "5.0%")]
        assert worst[2] > zero[2]  # run time
        assert worst[3] > 0  # retransmits
        assert worst[5] > 0  # drops
        # Every cell completed (no hang, no MigrationError) — reaching
        # this assertion is the proof.
        assert len(rows) == len(WORKLOADS) * len(LOSS_RATES)


# Also expose the fault-free vs fault-injected comparison for a clean-run
# identity check usable without the benchmark harness.
def verify_zero_loss_identity():
    """The loss_rate=0 sweep cell is bit-identical to the seed path."""
    kernel, mb = WORKLOADS[0]
    a = _run_cell(kernel, mb, 0.0).to_dict()
    config = figures.scaled_config(SCALE, seed=0)
    b = (
        MigrationRun(
            hpcc_workload(kernel, mb, scale=SCALE),
            figures.make_strategy("AMPoM"),
            config=config,
        )
        .execute()
        .to_dict()
    )
    return a == b
