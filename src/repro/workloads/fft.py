"""FFT: low spatial, high temporal locality (figure 4).

A large out-of-place radix-``r`` 1-D FFT over ``memory_bytes`` of complex
data (half input, half workspace):

* a **bit-reversal** reordering pass first — sequential reads of the
  source interleaved with writes to a permuted destination.  Real large-FFT
  implementations (e.g. HPCC's FFTE) perform the reordering in cache-sized
  blocks, so at page level the destination stream is short sequential runs
  of ``reorder_block_pages`` pages at permuted positions — detectable by a
  stride prefetcher after a couple of touches, which is what lets AMPoM
  prevent 97% of FFT's fault requests (section 5.4) despite the scatter;
* ``log_r`` **butterfly passes**, each re-sweeping both arrays.  For spans
  larger than a page, a radix-``r`` pass reads ``r`` positions spaced
  ``span/r`` apart, so the page trace interleaves ``r`` sequential page
  streams.  With the default radix 4 the same-stream re-reference distance
  equals AMPoM's ``dmax`` — strides are *detectable but weak*, giving the
  low-but-not-zero spatial locality score the paper's figure 4 places FFT
  at, while the repeated passes give it high temporal locality.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..mem.address_space import AddressSpace
from ..sim.rng import child_rng
from ..units import PAGE_SIZE, pages_for, us
from .base import TraceEvent, Workload, constant_chunk, interleave


class FftWorkload(Workload):
    """Out-of-place radix-``r`` FFT trace generator."""

    name = "FFT"

    def __init__(
        self,
        memory_bytes: int,
        page_size: int = PAGE_SIZE,
        radix: int = 4,
        page_visit_cost: float = us(36.0),
        chunk_pages: int = 8192,
        seed: int = 0,
        passes: int | None = None,
        reorder_block_pages: int = 16,
    ) -> None:
        super().__init__(memory_bytes, page_size)
        if radix < 2:
            raise ConfigurationError(f"radix must be >= 2: {radix}")
        if reorder_block_pages < 1:
            raise ConfigurationError(
                f"reorder_block_pages must be >= 1: {reorder_block_pages}"
            )
        self.radix = radix
        self.reorder_block_pages = reorder_block_pages
        self.page_visit_cost = page_visit_cost
        self.chunk_pages = chunk_pages
        self.seed = seed
        self.pages_per_array = max(pages_for(memory_bytes // 2, page_size), 1)
        #: Complex-16 elements in the transform.
        self.n_elements = max((memory_bytes // 2) // 16, 2)
        #: Butterfly passes modelled at page level (passes whose spans fit
        #: within a single page coalesce into sequential sweeps; we model
        #: them all as r-stream passes over the page range, which is the
        #: page-visit count of a blocked implementation).  Passing
        #: ``passes`` pins the arithmetic intensity for size-scaled sweeps.
        if passes is not None:
            if passes < 1:
                raise ConfigurationError(f"passes must be >= 1: {passes}")
            self.passes = passes
        else:
            self.passes = max(int(math.ceil(math.log(self.n_elements, radix))), 1)
        self.page_passes = self.passes

    def _allocate(self, space: AddressSpace) -> None:
        space.allocate_region("data", self.pages_per_array)
        space.allocate_region("work", self.pages_per_array)

    # ------------------------------------------------------------------
    def _stream_pass(self, start: int) -> Iterator[np.ndarray]:
        """One radix-``r`` butterfly pass: r interleaved page streams."""
        n = self.pages_per_array
        r = self.radix
        seg = n // r
        if seg == 0:
            # Array smaller than the radix: plain sequential sweep.
            yield np.arange(start, start + n, dtype=np.int64)
            return
        per_chunk = max(self.chunk_pages // r, 1)
        for lo in range(0, seg, per_chunk):
            hi = min(lo + per_chunk, seg)
            idx = np.arange(lo, hi, dtype=np.int64)
            streams = [start + s * seg + idx for s in range(r)]
            yield interleave(streams)
        # Tail pages not covered by the r equal segments.
        tail = start + seg * r
        if tail < start + n:
            yield np.arange(tail, start + n, dtype=np.int64)

    def trace(self) -> Iterator[TraceEvent]:
        space = self._require_setup()
        data = space.region("data").start_page
        work = space.region("work").start_page
        n = self.pages_per_array
        cost = self.page_visit_cost
        rng = child_rng(self.seed, f"fft-bitrev-{self.memory_bytes}")
        # Bit-reversal pass: sequential source, block-permuted destination
        # (sequential runs of reorder_block_pages at permuted positions).
        block = min(self.reorder_block_pages, n)
        n_blocks = -(-n // block)
        perm = rng.permutation(n_blocks).astype(np.int64)
        dst_order = np.concatenate(
            [np.arange(b * block, min((b + 1) * block, n), dtype=np.int64) for b in perm]
        )
        step = max(self.chunk_pages // 2, 1)
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            src = np.arange(data + lo, data + hi, dtype=np.int64)
            dst = work + dst_order[lo:hi]
            yield constant_chunk(interleave([src, dst]), cost)
        # Butterfly passes ping-pong between the two arrays.
        buffers = (work, data)
        for p in range(self.page_passes):
            src = buffers[p % 2]
            dst = buffers[(p + 1) % 2]
            for pages in self._stream_pass(src):
                yield constant_chunk(pages, cost)
            for lo in range(0, n, self.chunk_pages):
                hi = min(lo + self.chunk_pages, n)
                yield constant_chunk(
                    np.arange(dst + lo, dst + hi, dtype=np.int64), cost
                )

    def total_compute_estimate(self) -> float:
        n = self.pages_per_array
        visits = 2 * n + self.page_passes * 2 * n
        return visits * self.page_visit_cost
