"""Ablation: network latency — the paper's wide-area motivation.

The introduction motivates process migration with "the widening gap
between CPU and wide-area network speeds".  This sweep raises the one-way
link latency from the cluster's 0.15 ms toward wide-area values at fixed
bandwidth: NoPrefetch pays one round trip per page, so its penalty over
openMosix grows linearly with latency, while AMPoM's pipelining keeps its
penalty nearly flat — prefetching is what makes migration viable as the
latency gap widens.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import NetworkSpec
from repro.experiments import figures
from repro.metrics.report import format_table
from repro.units import ms

from ._common import emit

ONE_WAY_LATENCIES_MS = (0.15, 1.0, 5.0, 20.0)


def _run(latency_ms: float):
    base = figures.scaled_config(figures.DEFAULT_SCALE)
    config = replace(
        base, network=NetworkSpec(latency_s=ms(latency_ms))
    )
    totals = {}
    for scheme in ("openMosix", "AMPoM", "NoPrefetch"):
        totals[scheme] = figures.run_one(
            "DGEMM", 115, scheme, scale=figures.DEFAULT_SCALE, config=config
        ).total_time
    base_t = totals["openMosix"]
    return (
        latency_ms,
        (totals["AMPoM"] - base_t) / base_t * 100.0,
        (totals["NoPrefetch"] - base_t) / base_t * 100.0,
    )


def _sweep():
    return [_run(latency) for latency in ONE_WAY_LATENCIES_MS]


def bench_ablation_latency(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "ablation_latency",
        format_table(
            ["one-way latency ms", "AMPoM vs openMosix %", "NoPrefetch vs openMosix %"],
            rows,
        ),
    )
    ampom = {lat: a for lat, a, _ in rows}
    nopf = {lat: n for lat, _, n in rows}
    # NoPrefetch's penalty grows steeply with the round trip...
    assert nopf[20.0] > nopf[0.15] + 100.0
    # ...while AMPoM's pipelining absorbs the overwhelming share of it
    # (its residual growth is bounded by the dependent-zone cap).
    assert ampom[20.0] - ampom[0.15] < (nopf[20.0] - nopf[0.15]) / 4
    assert ampom[20.0] < nopf[20.0] / 20
