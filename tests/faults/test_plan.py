"""Unit tests for the seeded fault schedule (FaultPlan / FaultSpec)."""

from __future__ import annotations

import pytest

from repro.config import FaultSpec
from repro.errors import ConfigurationError, FaultInjectionError
from repro.faults import CLEAN, FaultInjectionLog, FaultPlan


def test_default_spec_is_inactive():
    assert not FaultSpec().active
    assert not FaultPlan(FaultSpec(), seed=0).active


@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_rate": 0.01},
        {"duplicate_rate": 0.5},
        {"delay_rate": 1.0, "delay_s": 0.001},
        {"link_down_windows": ((1.0, 2.0),)},
        {"deputy_crash_windows": ((0.0, 0.1),)},
    ],
)
def test_any_perturbation_activates_spec(kwargs):
    assert FaultSpec(**kwargs).active


@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_rate": -0.1},
        {"loss_rate": 1.5},
        {"duplicate_rate": 2.0},
        {"delay_s": -1.0},
        {"link_down_windows": ((2.0, 1.0),)},  # start >= end
        {"deputy_crash_windows": ((0.0, 1.0), (0.5, 2.0))},  # overlap
        {"replay_cache_pages": -1},
    ],
)
def test_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        FaultSpec(**kwargs)


def test_draws_are_deterministic_per_seed():
    spec = FaultSpec(loss_rate=0.3, duplicate_rate=0.2, delay_rate=0.4, delay_s=0.01)
    a = FaultPlan(spec, seed=7)
    b = FaultPlan(spec, seed=7)
    seq_a = [a.draw("home->dest", t * 0.1) for t in range(200)]
    seq_b = [b.draw("home->dest", t * 0.1) for t in range(200)]
    assert seq_a == seq_b
    # A different seed produces a different schedule.
    c = FaultPlan(spec, seed=8)
    seq_c = [c.draw("home->dest", t * 0.1) for t in range(200)]
    assert seq_a != seq_c


def test_channels_have_independent_streams():
    spec = FaultSpec(loss_rate=0.5)
    a = FaultPlan(spec, seed=1)
    b = FaultPlan(spec, seed=1)
    # Interleave extra traffic on another channel in plan ``b``: the
    # schedule on the first channel must not budge.
    seq_a = [a.draw("home->dest", float(i)) for i in range(100)]
    seq_b = []
    for i in range(100):
        b.draw("dest->home", float(i))
        seq_b.append(b.draw("home->dest", float(i)))
    assert seq_a == seq_b


def test_random_injection_gated_on_activation():
    spec = FaultSpec(loss_rate=1.0)
    plan = FaultPlan(spec, seed=0, active_from=float("inf"))
    assert plan.draw("ch", 1e9) is CLEAN
    plan.activate(5.0)
    assert plan.draw("ch", 4.999) is CLEAN
    assert plan.draw("ch", 5.0).drop


def test_link_down_windows_respect_activation():
    spec = FaultSpec(link_down_windows=((1.0, 2.0), (3.0, 4.0)))
    plan = FaultPlan(spec, seed=0, active_from=float("inf"))
    assert not plan.link_down(1.5)
    plan.activate(0.0)
    assert plan.link_down(1.5)
    assert not plan.link_down(2.0)  # half-open window
    assert plan.link_down(3.0)
    assert not plan.link_down(4.5)


def test_deputy_windows_are_absolute():
    spec = FaultSpec(deputy_crash_windows=((2.0, 3.0),))
    plan = FaultPlan(spec, seed=0, active_from=float("inf"))
    # Crash windows are experimenter-scheduled absolute times: they do
    # not wait for the resume-time activation.
    assert plan.deputy_down(2.5)
    assert not plan.deputy_down(3.0)
    assert plan.deputy_restart_time(2.5) == 3.0
    with pytest.raises(FaultInjectionError):
        plan.deputy_restart_time(10.0)


def test_draw_records_nothing_but_log_collects_events():
    # The plan itself only draws; LossyDirection logs.  But the shared
    # log object is reachable from the plan for wiring checks.
    log = FaultInjectionLog()
    plan = FaultPlan(FaultSpec(loss_rate=1.0), seed=0, log=log)
    plan.draw("ch", 0.0)
    assert log.summary() == {}
