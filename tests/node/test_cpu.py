"""Unit tests for the proportional-share CPU model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.node.cpu import CpuModel


def test_share_with_no_load():
    cpu = CpuModel(2e9)
    assert cpu.share() == 1.0
    assert cpu.stretch() == 1.0


def test_share_divides_among_runnable():
    cpu = CpuModel(2e9)
    cpu.acquire()
    cpu.acquire()
    assert cpu.runnable == 2
    assert cpu.stretch() == 2.0
    assert cpu.share() == pytest.approx(0.5)


def test_release_restores():
    cpu = CpuModel(2e9)
    cpu.acquire()
    cpu.release()
    assert cpu.runnable == 0


def test_release_without_acquire_raises():
    with pytest.raises(SimulationError):
        CpuModel(2e9).release()


def test_utilization_accounting():
    cpu = CpuModel(2e9)
    cpu.charge(2.0)
    assert cpu.utilization(4.0) == pytest.approx(0.5)
    assert cpu.utilization(1.0) == 1.0  # clamped
    assert cpu.utilization(0.0) == 0.0


def test_negative_charge_rejected():
    with pytest.raises(SimulationError):
        CpuModel(2e9).charge(-1.0)


def test_invalid_hz():
    with pytest.raises(SimulationError):
        CpuModel(0)
