"""Event heap for the discrete-event kernel.

Events are ordered by ``(time, sequence)``: ties in simulated time are
broken by insertion order, which keeps runs fully deterministic for a given
seed and schedule order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    seq:
        Monotone tie-breaker assigned by the queue.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it is popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its event."""
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when no live event remains.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
