"""Online SLO monitors: spec parsing, evaluation, gates, summaries."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import (
    MAX_BREACHES_PER_SPEC,
    SLOMonitor,
    SLOSpec,
    journey_summary_metrics,
    percentile,
)


class TestSLOSpec:
    def test_parse_upper_bound(self):
        spec = SLOSpec.parse("p99_freeze_s<=0.5")
        assert spec == SLOSpec(metric="p99_freeze_s", op="<=", limit=0.5)
        assert spec.name == "p99_freeze_s<=0.5"
        assert spec.ok(0.5)
        assert not spec.ok(0.50001)

    def test_parse_lower_bound(self):
        spec = SLOSpec.parse("busy_fraction>=0.25")
        assert spec.ok(0.3)
        assert not spec.ok(0.2)

    @pytest.mark.parametrize(
        "expr", ["", "nolimit", "x<5", "x==1", "x<=notanumber", "<=3"]
    )
    def test_parse_rejects_malformed(self, expr):
        with pytest.raises(ConfigurationError):
            SLOSpec.parse(expr)

    def test_parse_tolerates_whitespace(self):
        assert SLOSpec.parse(" kills <= 3 ").name == "kills<=3"


class TestSLOMonitor:
    def test_evaluate_records_breaches(self):
        monitor = SLOMonitor.parse(["mean_load<=2.0"])
        assert monitor.evaluate(0.0, {"mean_load": 1.0}) == []
        breaches = monitor.evaluate(1.0, {"mean_load": 3.5})
        assert len(breaches) == 1
        assert not monitor.ok
        breach = breaches[0]
        assert breach.as_dict() == {
            "t": 1.0,
            "metric": "mean_load",
            "op": "<=",
            "limit": 2.0,
            "observed": 3.5,
        }
        assert "mean_load" in breach.describe()

    def test_absent_metrics_are_skipped(self):
        monitor = SLOMonitor.parse(["kills<=0"])
        assert monitor.evaluate(0.0, {"mean_load": 9.9}) == []
        assert monitor.ok

    def test_retention_capped_per_spec(self):
        monitor = SLOMonitor.parse(["kills<=0"])
        (spec,) = monitor.specs
        for t in range(MAX_BREACHES_PER_SPEC + 50):
            monitor.evaluate(float(t), {"kills": 1.0})
        assert monitor.breach_count(spec) == MAX_BREACHES_PER_SPEC + 50
        assert len(monitor.breaches) == MAX_BREACHES_PER_SPEC

    def test_report_and_describe(self):
        monitor = SLOMonitor.parse(["kills<=0", "mean_load<=10"])
        monitor.evaluate(1.0, {"kills": 2.0, "mean_load": 1.0})
        report = monitor.report()
        assert report["ok"] is False
        assert report["breach_counts"] == {"kills<=0": 1}
        assert report["specs"] == ["kills<=0", "mean_load<=10"]
        assert report["evaluations"] == 1
        text = monitor.describe()
        assert "kills<=0" in text


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 1.0) == 4.0

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0


class TestJourneySummaryMetrics:
    def test_summary_from_sustained_run(self):
        from repro.cluster.sustained import run_sustained
        from repro.cluster.topology import build_preset
        from repro.obs import Observability

        obs = Observability.enabled(
            trace=False, metrics=False, fleet=False, journeys=True
        )
        res = run_sustained(build_preset("cluster_32", seed=3), obs=obs)
        summary = journey_summary_metrics(obs.journeys)
        assert summary["journeys"] == res.report.arrivals
        assert summary["migrations"] == res.report.migrations
        assert summary["max_freeze_s"] >= summary["p99_freeze_s"] >= 0.0
        assert summary["journey_wall_s_p99"] > 0.0


class TestChaosSLOGate:
    def test_guaranteed_breach_fails_the_report(self):
        from repro.cluster.chaos import run_chaos

        report = run_chaos(
            presets=["pair"], schemes=["AMPoM"], seeds=[0], slos=["crashes<=-1"]
        )
        assert not report.ok
        (breach,) = report.slo_breaches
        assert breach["cell"] == "pair/AMPoM/seed=0"
        assert breach["metric"] == "crashes"
        assert breach["limit"] == -1.0
        assert "SLO BREACH" in report.to_text()

    def test_no_slos_means_no_gate_change(self):
        from repro.cluster.chaos import run_chaos

        report = run_chaos(presets=["pair"], schemes=["AMPoM"], seeds=[0])
        assert report.slo_breaches == []
        assert report.ok


class TestOnlineSustainedMonitor:
    def test_driver_evaluates_slos_on_every_tick(self):
        from repro.cluster.sustained import SustainedLoadDriver
        from repro.cluster.topology import build_preset

        spec = build_preset("cluster_32", seed=3)
        driver = SustainedLoadDriver(spec.graph, spec.sustained, config=spec.config)
        monitor = SLOMonitor.parse(["mean_load<=-1"])  # breaches every tick
        driver.slo_monitor = monitor
        driver.execute()
        (slo,) = monitor.specs
        assert monitor.breach_count(slo) == len(driver.samples)
        assert not monitor.ok
