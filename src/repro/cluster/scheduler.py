"""Load-balancing scheduler built on cheap migrations (paper section 7).

The paper's conclusion: "new scheduling policies can make use of AMPoM on
openMosix to perform more aggressive migrations since the performance
penalty of suboptimal decisions has been dramatically decreased."

This module provides a deliberately simple openMosix-style balancer over a
cluster of CPU-bound tasks so that claim can be demonstrated (see
``examples/load_balancing.py`` and the scheduler ablation bench):

* tasks progress in fixed time slices at their node's fair CPU share;
* periodically, the balancer moves one task from the most- to the
  least-loaded node whenever the load gap exceeds a threshold;
* a migration freezes the task for a strategy-dependent time — the
  openMosix cost model ships the task's whole dirty memory, the AMPoM cost
  model ships three pages plus the MPT (plus a working-set refetch that
  overlaps execution and is therefore *not* freeze).

The scheduler reports makespan, migration count, and total frozen time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..sim import Simulator, Timeout
from ..units import pages_for
from .cluster import Cluster
from .policy import MigrationPolicy, ThresholdPolicy, make_policy, pick_task


@dataclass(slots=True)
class Task:
    """A CPU-bound process with a dirty address space."""

    name: str
    cpu_seconds: float
    memory_bytes: int
    node: str
    #: Fraction of the address space a migrant actually re-touches soon
    #: after migration (drives AMPoM's post-migration paging cost).
    working_set_fraction: float = 1.0
    #: Simulated time the process arrives (sustained-load scenarios feed
    #: arrival-stream draws in here; 0.0 keeps the classic batch start).
    #: Before its arrival a task contributes no load and cannot migrate.
    arrival_s: float = 0.0
    remaining: float = field(init=False)
    migrations: int = field(default=0, init=False)
    frozen_time: float = field(default=0.0, init=False)
    finished_at: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.cpu_seconds <= 0 or self.memory_bytes <= 0:
            raise ConfigurationError(f"invalid task {self.name!r}")
        if not (0.0 < self.working_set_fraction <= 1.0):
            raise ConfigurationError("working_set_fraction must be in (0, 1]")
        if self.arrival_s < 0.0:
            raise ConfigurationError(f"arrival_s must be >= 0: {self.arrival_s}")
        self.remaining = self.cpu_seconds


@dataclass(frozen=True, slots=True)
class MigrationDecision:
    """One placement decision taken by the balancer: move ``task`` from
    ``src`` to ``dst`` at simulated ``time``.  The decision log is what
    :class:`SchedulerDriver` turns into executable migration paths."""

    time: float
    task: str
    src: str
    dst: str


@dataclass(frozen=True, slots=True)
class SchedulerReport:
    """Outcome of one scheduling simulation."""

    makespan: float
    migrations: int
    total_frozen_time: float
    per_task_completion: dict[str, float]


class ClusterScheduler:
    """Periodic greedy balancer with a pluggable migration cost model."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        tasks: list[Task],
        config: SimulationConfig,
        freeze_model: str = "ampom",
        balance_interval: float = 1.0,
        load_gap_threshold: int = 2,
        time_slice: float = 0.1,
        min_task_lifetime: float = 0.0,
        gossip=None,
        node_plan=None,
        policy: MigrationPolicy | None = None,
    ) -> None:
        if freeze_model not in ("ampom", "openmosix", "none"):
            raise ConfigurationError(f"unknown freeze model {freeze_model!r}")
        self.sim = sim
        self.cluster = cluster
        self.tasks = tasks
        self.config = config
        self.freeze_model = freeze_model
        self.balance_interval = balance_interval
        self.load_gap_threshold = load_gap_threshold
        self.time_slice = time_slice
        #: Conservative policy knob: only tasks whose total CPU demand
        #: reaches this value are eligible to migrate.  Models the
        #: lifetime-threshold rule of Harchol-Balter & Downey that the
        #: paper's introduction cites as the kind of conservatism expensive
        #: migration forces ("[10] migrates a process only if its lifetime
        #: exceeds a certain threshold").
        self.min_task_lifetime = min_task_lifetime
        #: Optional :class:`repro.cluster.gossip.GossipLoadMap`.  When set,
        #: balancing is decentralized and sender-initiated, as in real
        #: openMosix: each node compares its own load against its (partial,
        #: stale) gossip view and offloads to the least-loaded node it
        #: knows of.  When ``None``, the balancer is omniscient.
        self.gossip = gossip
        #: Optional :class:`repro.faults.NodeFaultPlan`.  The central round
        #: never targets a node that is currently down (the omniscient
        #: balancer sees crashes instantly); the gossip round instead skips
        #: peers the sender *suspects*, so detection latency is part of the
        #: modelled cost.
        self.node_plan = node_plan
        #: Trigger policy for the decentralized (gossip) round.  ``None``
        #: defaults (lazily, on first gossip round) to the openMosix
        #: threshold rule parameterized by ``load_gap_threshold``; see
        #: :mod:`repro.cluster.policy`.
        self.policy = policy
        self.migrations = 0
        self.total_frozen_time = 0.0
        #: Optional decision hook ``f(decision, view)`` fired on every
        #: placement decision with the gossip-view snapshot that justified
        #: it (``None`` for omniscient central rounds).  Pure observer —
        #: journey traces subscribe here; the hook must not mutate state.
        self.on_decision = None
        #: Every placement decision in the order it was taken.
        self.decisions: list[MigrationDecision] = []
        self._pending_freeze: dict[str, float] = {}
        for task in tasks:
            if task.node not in cluster.nodes:
                raise ConfigurationError(f"task {task.name!r} on unknown node {task.node!r}")

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def migration_freeze(self, task: Task) -> float:
        """Freeze time for migrating ``task`` under the chosen mechanism."""
        hw = self.config.hardware
        bw = self.config.network.bandwidth_bps
        pages = pages_for(task.memory_bytes, hw.page_size)
        if self.freeze_model == "none":
            return 0.0
        if self.freeze_model == "openmosix":
            return hw.migration_setup_time + pages * hw.page_size / bw
        # AMPoM: three pages + MPT transfer + MPT install.
        mpt_bytes = pages * hw.mpt_entry_bytes
        return (
            hw.migration_setup_time
            + (3 * hw.page_size + mpt_bytes) / bw
            + pages * hw.mpt_install_time_per_entry
        )

    # ------------------------------------------------------------------
    def _loads(self) -> dict[str, int]:
        loads = {name: 0 for name in self.cluster.nodes}
        now = self.sim.now
        for task in self.tasks:
            if task.finished_at is None and task.arrival_s <= now:
                loads[task.node] += 1
        return loads

    def _task_process(self, task: Task):
        if task.arrival_s > 0.0:
            yield Timeout(task.arrival_s)
        while task.remaining > 0:
            # Serve a pending migration freeze before computing further.
            freeze = self._pending_freeze.pop(task.name, 0.0)
            if freeze > 0.0:
                yield Timeout(freeze)
            node = self.cluster.node(task.node)  # may have been migrated
            node.cpu.acquire()
            stretch = node.cpu.stretch()
            work = min(task.remaining, self.time_slice)
            yield Timeout(work * stretch)
            node.cpu.charge(work)
            node.cpu.release()
            task.remaining -= work
        task.finished_at = self.sim.now

    def _migrate(self, task: Task, dest: str, view: dict | None = None) -> None:
        freeze = self.migration_freeze(task)
        decision = MigrationDecision(
            time=self.sim.now, task=task.name, src=task.node, dst=dest
        )
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision, view)
        task.node = dest
        task.migrations += 1
        task.frozen_time += freeze
        self._pending_freeze[task.name] = freeze
        self.migrations += 1
        self.total_frozen_time += freeze

    def _eligible(self, node: str) -> list[Task]:
        now = self.sim.now
        return [
            t
            for t in self.tasks
            if t.node == node
            and t.finished_at is None
            and t.arrival_s <= now
            and t.cpu_seconds >= self.min_task_lifetime
        ]

    def _alive(self, names) -> list[str]:
        """Nodes not currently inside a crash window (all, if no plan)."""
        if self.node_plan is None:
            return list(names)
        now = self.sim.now
        return [n for n in names if not self.node_plan.down(n, now)]

    def _central_round(self) -> None:
        """Omniscient greedy balancing (exact global loads).

        Ties break on node/task name so the decision log is a pure
        function of the seed — and so the decentralized threshold policy
        with a fully converged view reproduces these exact decisions
        while the overload is confined to one node
        (``tests/cluster/test_policy.py``; once several nodes exceed the
        gap at once the central round still serializes one move per round
        while decentralized senders act concurrently, a documented
        divergence).
        """
        loads = self._loads()
        alive = self._alive(loads)
        if len(alive) < 2:
            return
        busiest = max(alive, key=lambda n: (loads[n], n))
        idlest = min(alive, key=lambda n: (loads[n], n))
        if loads[busiest] - loads[idlest] < self.load_gap_threshold:
            return
        candidates = self._eligible(busiest)
        if not candidates:
            return
        # Move the task with the most remaining work (it benefits most).
        self._migrate(pick_task(candidates), idlest)

    def _gossip_round(self) -> None:
        """Decentralized, sender-initiated balancing from gossip views.

        Each node decides alone: its :class:`MigrationPolicy` sees only the
        node's own load and its (partial, stale, suspicion-filtered) gossip
        view, never the global snapshot.
        """
        policy = self.policy
        if policy is None:
            policy = self.policy = ThresholdPolicy(
                load_gap_threshold=self.load_gap_threshold
            )
        loads = self._loads()
        for node in sorted(self.cluster.nodes):
            if self.node_plan is not None and self.node_plan.down(node, self.sim.now):
                continue  # a dead node takes no decisions
            view = self.gossip.view(node)
            if hasattr(self.gossip, "suspects"):
                suspected = self.gossip.suspects(node)
                view = {n: load for n, load in view.items() if n not in suspected}
            if not view:
                continue
            target = policy.select_target(node, loads[node], view)
            if target is None:
                continue
            candidates = self._eligible(node)
            if not candidates:
                continue
            task = policy.select_task(candidates)
            self._migrate(task, target, view=view)
            loads[node] -= 1

    def _balancer(self):
        while any(t.finished_at is None for t in self.tasks):
            yield Timeout(self.balance_interval)
            if self.gossip is None:
                self._central_round()
            else:
                self._gossip_round()

    # ------------------------------------------------------------------
    def run(self) -> SchedulerReport:
        """Execute all tasks to completion; return the report."""
        procs = [
            self.sim.spawn(self._task_process(t), name=f"task-{t.name}")
            for t in self.tasks
        ]
        self.sim.spawn(self._balancer(), name="balancer")
        for proc in procs:
            self.sim.run_until_complete(proc)
        return SchedulerReport(
            makespan=self.sim.now,
            migrations=self.migrations,
            total_frozen_time=self.total_frozen_time,
            per_task_completion={
                t.name: (t.finished_at if t.finished_at is not None else float("nan"))
                for t in self.tasks
            },
        )


# ----------------------------------------------------------------------
# From placement decisions to executed migrations
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SchedulerDriveResult:
    """Outcome of one :meth:`SchedulerDriver.execute` run."""

    report: SchedulerReport
    decisions: list[MigrationDecision]
    migrants: tuple
    results: list


class SchedulerDriver:
    """Executes a balancer's placement decisions as real migrations.

    The coarse :class:`ClusterScheduler` treats migration as a pure freeze
    cost; the paper's claim (section 7) is that AMPoM makes *aggressive*
    placement affordable.  This driver closes the loop: it runs the
    balancer over placement tasks derived from real workloads (phase 1),
    converts its decision log into :class:`MigrantSpec` paths — chained
    hops for a task moved repeatedly — and executes those on the shared
    :class:`NodeGraph` with full remote-paging simulation (phase 2).
    """

    def __init__(
        self,
        graph,
        placements,
        strategy_factory,
        config: SimulationConfig | None = None,
        *,
        freeze_model: str = "ampom",
        balance_interval: float = 1.0,
        load_gap_threshold: int = 2,
        time_slice: float = 0.1,
        min_task_lifetime: float = 0.0,
        gossip=None,
        policy: "str | MigrationPolicy | None" = None,
        decentralized: bool = False,
        gossip_interval_s: float = 1.0,
        arrival_times=None,
        task_cpu_seconds=None,
    ) -> None:
        #: ``placements`` is a sequence of (workload, home_node) pairs.
        self.graph = graph
        self.placements = list(placements)
        self.strategy_factory = strategy_factory
        self.config = config if config is not None else SimulationConfig()
        self.freeze_model = freeze_model
        self.balance_interval = balance_interval
        self.load_gap_threshold = load_gap_threshold
        self.time_slice = time_slice
        self.min_task_lifetime = min_task_lifetime
        self.gossip = gossip
        #: Policy name (resolved via :func:`repro.cluster.policy.make_policy`)
        #: or a ready :class:`MigrationPolicy` instance; ``None`` keeps the
        #: threshold default.  Only consulted on decentralized rounds.
        self.policy = policy
        #: When true (and no external ``gossip`` was supplied), phase 1
        #: builds its own :class:`repro.cluster.gossip.GossipLoadMap` on the
        #: plan simulator, so every trigger decision reads a node-local,
        #: message-propagated view instead of the omniscient snapshot.
        self.decentralized = decentralized
        self.gossip_interval_s = gossip_interval_s
        #: Optional per-placement arrival times (sustained-load streams);
        #: ``None`` keeps the classic everyone-at-t=0 batch.
        self.arrival_times = None if arrival_times is None else list(arrival_times)
        #: Optional per-placement CPU demand override.  Sustained scenarios
        #: draw lifetimes from the arrival stream instead of deriving them
        #: from the workload trace (whose estimate is milliseconds — far
        #: too short to build up sustained load).
        self.task_cpu_seconds = (
            None if task_cpu_seconds is None else list(task_cpu_seconds)
        )
        #: Optional :class:`repro.obs.Observability` bundle.  Set by
        #: :meth:`execute` (or directly, for plan-only callers such as the
        #: figure generators): phase 1 feeds armed fleet telemetry and
        #: journey traces, phase 2 hands the bundle to the runtime.  Pure
        #: observers — armed plans decide identically to bare ones.
        self.obs = None
        self.runtime = None
        if not self.placements:
            raise ConfigurationError("SchedulerDriver needs at least one placement")
        for label, override in (
            ("arrival_times", self.arrival_times),
            ("task_cpu_seconds", self.task_cpu_seconds),
        ):
            if override is not None and len(override) != len(self.placements):
                raise ConfigurationError(
                    f"{label} has {len(override)} entries for "
                    f"{len(self.placements)} placements"
                )
        names = set(graph.nodes)
        for i, (_workload, home) in enumerate(self.placements):
            if home not in names:
                raise ConfigurationError(
                    f"placement {i} starts on unknown node {home!r}"
                )

    # ------------------------------------------------------------------
    def plan(self) -> tuple[SchedulerReport, list[MigrationDecision]]:
        """Phase 1: run the balancer on placement tasks; return its report
        and decision log.  Uses a throwaway simulator — the decisions, not
        the coarse timing, feed phase 2."""
        sim = Simulator()
        cluster = Cluster(
            sim, self.config, self.graph.nodes, link_specs=self.graph.spec_overrides()
        )
        node_plan = None
        if self.config.node_faults.active:
            from ..faults import NodeFaultPlan
            from .topology import FILE_SERVER

            # Same spec + seed as the runtime's plan, so phase 1 balances
            # around the very crash schedule phase 2 will execute under.
            node_plan = NodeFaultPlan(
                self.config.node_faults,
                seed=self.config.seed,
                nodes=self.graph.nodes,
                protected={FILE_SERVER} if FILE_SERVER in self.graph.nodes else (),
            )
        tasks = self._make_tasks()
        gossip = self.gossip
        own_gossip = None
        if self.decentralized and gossip is None:
            from .gossip import GossipLoadMap

            # Bound to the plan simulator: load updates are real messages
            # on the plan's links, and every view lags accordingly.
            own_gossip = GossipLoadMap(
                sim,
                cluster,
                load_of=lambda name: scheduler._loads()[name],
                interval=self.gossip_interval_s,
                seed=self.config.seed,
                node_plan=node_plan,
            )
            gossip = own_gossip
        scheduler = ClusterScheduler(
            sim,
            cluster,
            tasks,
            self.config,
            freeze_model=self.freeze_model,
            balance_interval=self.balance_interval,
            load_gap_threshold=self.load_gap_threshold,
            time_slice=self.time_slice,
            min_task_lifetime=self.min_task_lifetime,
            gossip=gossip,
            node_plan=node_plan,
            policy=self._resolve_policy(),
        )
        jlog = self.obs.journeys if self.obs is not None else None
        if jlog is not None:
            # One journey per task, opened at its arrival; every placement
            # decision is recorded with the (suspicion-filtered) gossip
            # view that justified it, so the causal chain "this view led
            # to this move" is reconstructable per migrant.
            for task in tasks:
                jlog.start(
                    task.name, task.arrival_s, node=task.node,
                    cpu_seconds=task.cpu_seconds, memory_bytes=task.memory_bytes,
                )

            def on_decision(decision, view):
                jlog.record(
                    decision.task, "decision", decision.time,
                    src=decision.src, dst=decision.dst,
                    view=None if view is None else dict(view),
                )

            scheduler.on_decision = on_decision
        self._spawn_monitors(sim, scheduler)
        report = scheduler.run()
        if own_gossip is not None:
            own_gossip.stop()
        if jlog is not None:
            for name, done_at in report.per_task_completion.items():
                if done_at == done_at:  # non-NaN: the plan completed it
                    jlog.record(name, "plan_complete", done_at)
        return report, list(scheduler.decisions)

    def _make_tasks(self) -> list[Task]:
        """Placement pairs -> scheduler tasks (arrival/lifetime overrides
        applied when a sustained-load stream drives the run)."""
        tasks = []
        for i, (workload, home) in enumerate(self.placements):
            cpu = None if self.task_cpu_seconds is None else self.task_cpu_seconds[i]
            if cpu is None:
                if workload.address_space is None:
                    # The estimate needs the trace; the runtime re-runs
                    # setup() later (allocation is deterministic, so this
                    # is free).
                    workload.setup()
                cpu = workload.total_compute_estimate()
            tasks.append(
                Task(
                    name=f"task-{i}",
                    cpu_seconds=cpu,
                    memory_bytes=workload.memory_bytes,
                    node=home,
                    arrival_s=0.0 if self.arrival_times is None else self.arrival_times[i],
                )
            )
        return tasks

    def _resolve_policy(self) -> "MigrationPolicy | None":
        if self.policy is None or isinstance(self.policy, MigrationPolicy):
            return self.policy
        if self.policy == "threshold":
            # Honor the driver-level gap knob rather than the class default.
            return make_policy("threshold", load_gap_threshold=self.load_gap_threshold)
        return make_policy(self.policy)

    def _spawn_monitors(self, sim: Simulator, scheduler: ClusterScheduler) -> None:
        """Hook for subclasses: spawn observation processes on the plan
        simulator (e.g. the sustained driver's utilization sampler)."""

    def migrant_specs(self, decisions) -> tuple:
        """Convert a decision log into per-task migration paths.

        Consecutive moves of one task chain into a multi-hop path; the
        chain is cut at the first revisit (the runtime's deputy model
        does not re-absorb a node already holding a transit deputy)."""
        from .topology import MigrantSpec

        by_task: dict[str, list[MigrationDecision]] = {}
        for decision in decisions:
            by_task.setdefault(decision.task, []).append(decision)
        specs = []
        for i, (workload, home) in enumerate(self.placements):
            moves = by_task.get(f"task-{i}", [])
            if not moves:
                continue
            path = [home]
            times: list[float] = []
            for decision in moves:
                if decision.dst in path:
                    break
                path.append(decision.dst)
                times.append(decision.time)
            if len(path) < 2:
                continue
            hop_delays = tuple(
                max(times[k + 1] - times[k], self.time_slice)
                for k in range(len(path) - 2)
            )
            specs.append(
                MigrantSpec(
                    workload=workload,
                    strategy=self.strategy_factory,
                    path=tuple(path),
                    start_s=times[0],
                    hop_delays=hop_delays,
                    name=f"task-{i}",
                )
            )
        return tuple(specs)

    def execute(self, obs=None, jobs=None) -> SchedulerDriveResult:
        """Phases 1 + 2: plan, then simulate every decided migration.

        The (sequential) planning phase is the epoch barrier: once the
        decision log is fixed, node-disjoint migrant groups can be
        simulated in forked shards (``jobs`` > 1 or ``REPRO_SHARD``) with
        byte-identical results; :func:`plan_scenario_shards` quiesces to
        the one-runtime path whenever a message could cross a shard (the
        plan lands on :attr:`shard_plan` either way).  Node-fault configs
        always take the sequential path, so the re-targeting hook never
        needs to reach across shards.
        """
        from .parallel import execute_sharded, plan_scenario_shards
        from .session import ScenarioRuntime
        from .topology import ScenarioSpec

        if obs is not None:
            self.obs = obs
        obs = self.obs
        report, decisions = self.plan()
        migrants = self.migrant_specs(decisions)
        jlog = obs.journeys if obs is not None else None
        if jlog is not None:
            # Tasks the plan completed without ever migrating terminate
            # here; migrating tasks get their terminal state from phase 2.
            migrating = {m.name for m in migrants}
            for name, done_at in report.per_task_completion.items():
                if name not in migrating and done_at == done_at:
                    jlog.finish(name, done_at, "completed", hops=0)
        results: list = []
        self.shard_plan = None
        if migrants:
            spec = ScenarioSpec(
                graph=self.graph, migrants=migrants, config=self.config
            )
            self.shard_plan = plan_scenario_shards(spec, obs=obs, jobs=jobs)
            if self.shard_plan.parallel:
                results = execute_sharded(spec, plan=self.shard_plan)
            else:
                self.runtime = ScenarioRuntime(spec, obs=obs)
                self._install_retarget(self.runtime)
                results = self.runtime.execute()
        return SchedulerDriveResult(
            report=report, decisions=decisions, migrants=migrants, results=results
        )

    def _install_retarget(self, runtime) -> None:
        """Arm the runtime's re-targeting hook under a node-fault plan.

        When a migration aborts because its destination crashed, the
        runtime asks this hook for a replacement before falling back to a
        wait-for-restart retry.  The policy mirrors the balancer's greedy
        rule: least-loaded live node not already on the route (and never
        the file server)."""
        from .topology import FILE_SERVER

        plan = runtime.node_plan
        if plan is None:
            return

        def retarget(route, hop, now):
            taken = set(route)
            candidates = [
                n
                for n in self.graph.nodes
                if n not in taken and n != FILE_SERVER and not plan.down(n, now)
            ]
            if not candidates:
                return None
            return min(candidates, key=lambda n: (runtime.cluster.node(n).load, n))

        runtime.retarget = retarget
