"""Migration journey traces: one causal record per migrant.

A *journey* links everything that happens to one migrant across both
phases of a sustained run — arrival, every policy decision (with the
gossip-view snapshot that justified it), each freeze/transfer hop, every
abort/re-target/chain-repair recovery, and the terminal completion or
kill.  The per-site instruments (span tracer, fault stats) each see one
slice of that story; the :class:`JourneyLog` stitches the slices into a
single causal chain keyed by the migrant's name.

Recording is append-only and never touches the simulator, so journeys are
pure observers: armed runs stay byte-identical to unarmed ones.  Because
every event is recorded at the exact site that bumps the corresponding
:class:`repro.faults.log.NodeFaultStats` counter (or appends the
:class:`repro.cluster.sustained.SustainedReport` decision), the log can
*reconcile* — assert exact ``==`` equality between its event counts and
the independent counters (:meth:`JourneyLog.reconcile`).

Exports: JSONL (one journey per line) and Perfetto ``trace_event`` JSON
with flow arrows (``ph`` ``s``/``t``/``f``) chaining each journey's stage
slices, mergeable into a :class:`repro.obs.spans.SpanTracer` trace via
``to_perfetto(tracer, journeys=log)``.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Perfetto process id for the journey lanes — far above the tracer's
#: first-appearance pids so merged traces never collide.
JOURNEY_PID = 9001

#: Simulated seconds -> trace_event microseconds (matches obs.perfetto).
_US = 1e6


@dataclass(slots=True)
class JourneyEvent:
    """One step of a journey: ``(t, kind, details)``."""

    t: float
    kind: str
    args: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        record = {"t": self.t, "kind": self.kind}
        if self.args:
            record.update(self.args)
        return record


@dataclass(slots=True)
class Journey:
    """The causal record of one migrant, arrival to terminal state."""

    task: str
    events: list[JourneyEvent] = field(default_factory=list)
    #: ``""`` while in flight; ``planned`` / ``completed`` / ``killed``.
    outcome: str = ""
    end_t: float | None = None

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def arrival_t(self) -> float | None:
        return self.events[0].t if self.events else None

    @property
    def wall_s(self) -> float | None:
        """Arrival-to-terminal wall time in simulated seconds."""
        if self.end_t is None or not self.events:
            return None
        return self.end_t - self.events[0].t

    def as_dict(self) -> dict:
        return {
            "task": self.task,
            "outcome": self.outcome,
            "end_t": self.end_t,
            "events": [e.as_dict() for e in self.events],
        }


class JourneyLog:
    """Collects journeys plus cluster-level events (crash detections)."""

    __slots__ = ("journeys", "cluster_events")

    def __init__(self) -> None:
        #: task name -> journey, in first-recording order.
        self.journeys: dict[str, Journey] = {}
        #: Events not owned by one migrant (e.g. ``crash_detect``).
        self.cluster_events: list[JourneyEvent] = []

    # -- recording -----------------------------------------------------
    def start(self, task: str, t: float, **args) -> Journey:
        """Open a journey with its ``arrival`` event (idempotent)."""
        journey = self.journeys.get(task)
        if journey is None:
            journey = self.journeys[task] = Journey(task)
            journey.events.append(JourneyEvent(t, "arrival", args))
        return journey

    def record(self, task: str, kind: str, t: float, **args) -> None:
        """Append one event; opens the journey lazily for runs that skip
        the arrival phase (plain ``repro cluster run`` scenarios)."""
        journey = self.journeys.get(task)
        if journey is None:
            journey = self.journeys[task] = Journey(task)
        journey.events.append(JourneyEvent(t, kind, args))

    def finish(self, task: str, t: float, outcome: str, **args) -> None:
        """Record the terminal event and seal the journey's outcome."""
        self.record(task, outcome, t, **args)
        journey = self.journeys[task]
        journey.outcome = outcome
        journey.end_t = t

    def record_cluster(self, kind: str, t: float, **args) -> None:
        self.cluster_events.append(JourneyEvent(t, kind, args))

    def on_detection(self, latency_s: float, node: str = "", at: float | None = None) -> None:
        """Detection sink for :class:`repro.faults.log.NodeFaultStats`."""
        self.record_cluster(
            "crash_detect", at if at is not None else 0.0,
            node=node, latency_s=latency_s,
        )

    # -- reading -------------------------------------------------------
    def count(self, kind: str) -> int:
        """Total events of ``kind`` across every journey."""
        return sum(j.count(kind) for j in self.journeys.values())

    def count_cluster(self, kind: str) -> int:
        return sum(1 for e in self.cluster_events if e.kind == kind)

    def freeze_seconds(self) -> list[float]:
        """Duration of every successful freeze across all journeys."""
        return [
            float(e.args["dur_s"])
            for j in self.journeys.values()
            for e in j.events
            if e.kind == "freeze"
        ]

    def wall_times(self) -> list[float]:
        """Arrival-to-terminal wall time of every sealed journey."""
        return [j.wall_s for j in self.journeys.values() if j.wall_s is not None]

    # -- reconciliation ------------------------------------------------
    def reconcile(self, report=None, stats=None) -> list[str]:
        """Exact ``==`` cross-check against the independent counters.

        Returns a list of mismatch descriptions (empty = reconciled).
        ``report`` is a :class:`repro.cluster.sustained.SustainedReport`;
        ``stats`` a :class:`repro.faults.log.NodeFaultStats`.  Each pair
        is compared with integer equality, never tolerance.
        """
        mismatches: list[str] = []

        def check(label: str, ours: int, theirs: int) -> None:
            if ours != theirs:
                mismatches.append(f"{label}: journeys={ours} counter={theirs}")

        if report is not None:
            check("arrivals", self.count("arrival"), report.arrivals)
            check("migrations", self.count("decision"), report.migrations)
            check("plan completions", self.count("plan_complete"), report.completed)
        if stats is not None:
            check("migration aborts", self.count("abort"), stats.migration_aborts)
            check("retargets", self.count("retarget"), stats.retargets)
            check("chain repairs", self.count("chain_repair"), stats.chain_repairs)
            check("kills", self.count("killed"), stats.kills)
            check("detections", self.count_cluster("crash_detect"), stats.detections)
        return mismatches

    # -- exporters -----------------------------------------------------
    def to_jsonl_lines(self) -> list[str]:
        """One compact JSON object per journey (plus one ``cluster`` row)."""
        lines = [
            json.dumps(j.as_dict(), separators=(",", ":"), sort_keys=True)
            for j in self.journeys.values()
        ]
        if self.cluster_events:
            lines.append(
                json.dumps(
                    {"task": None, "events": [e.as_dict() for e in self.cluster_events]},
                    separators=(",", ":"),
                    sort_keys=True,
                )
            )
        return lines

    def write_jsonl(self, path: str) -> int:
        lines = self.to_jsonl_lines()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)


def journey_trace_events(log: JourneyLog) -> list[dict]:
    """Perfetto events for the journey lanes: one thread per journey under
    a shared ``journeys`` process, stage slices between consecutive events,
    and flow arrows (``ph`` ``s``/``t``/``f``) chaining each journey's
    stages so the UI draws the causal arc arrival -> ... -> terminal."""
    events: list[dict] = [
        {"ph": "M", "pid": JOURNEY_PID, "name": "process_name", "args": {"name": "journeys"}}
    ]
    body: list[dict] = []
    for tid, journey in enumerate(log.journeys.values(), start=1):
        events.append(
            {
                "ph": "M",
                "pid": JOURNEY_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": journey.task},
            }
        )
        steps = journey.events
        end_t = journey.end_t if journey.end_t is not None else (
            steps[-1].t if steps else 0.0
        )
        n = len(steps)
        for i, step in enumerate(steps):
            until = steps[i + 1].t if i + 1 < n else end_t
            slice_event = {
                "ph": "X",
                "pid": JOURNEY_PID,
                "tid": tid,
                "ts": step.t * _US,
                "dur": max(until - step.t, 0.0) * _US,
                "name": step.kind,
                "cat": "journey",
            }
            if step.args:
                slice_event["args"] = _jsonable(step.args)
            body.append(slice_event)
            flow_ph = "s" if i == 0 else ("f" if i == n - 1 else "t")
            if n > 1:
                flow = {
                    "ph": flow_ph,
                    "pid": JOURNEY_PID,
                    "tid": tid,
                    "ts": step.t * _US,
                    "id": tid,
                    "name": "journey",
                    "cat": "journey",
                }
                if flow_ph == "f":
                    flow["bp"] = "e"
                body.append(flow)
    if log.cluster_events:
        tid = len(log.journeys) + 1
        events.append(
            {
                "ph": "M",
                "pid": JOURNEY_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": "cluster"},
            }
        )
        for step in log.cluster_events:
            body.append(
                {
                    "ph": "i",
                    "pid": JOURNEY_PID,
                    "tid": tid,
                    "ts": step.t * _US,
                    "name": step.kind,
                    "s": "t",
                    "cat": "journey",
                    "args": _jsonable(step.args),
                }
            )
    body.sort(key=lambda e: e["ts"])
    return events + body


def _jsonable(args: dict) -> dict:
    """Coerce event details to JSON-safe values (views are str->int)."""
    out = {}
    for key, value in args.items():
        if isinstance(value, dict):
            out[key] = {str(k): v for k, v in value.items()}
        elif isinstance(value, (list, tuple)):
            out[key] = [str(v) for v in value]
        else:
            out[key] = value
    return out


def write_journeys_perfetto(log: JourneyLog, path: str) -> None:
    """Standalone Perfetto document of the journey lanes."""
    doc = {"traceEvents": journey_trace_events(log), "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc) + "\n")


__all__ = [
    "JOURNEY_PID",
    "Journey",
    "JourneyEvent",
    "JourneyLog",
    "journey_trace_events",
    "write_journeys_perfetto",
]
