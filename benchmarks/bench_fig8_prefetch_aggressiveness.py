"""Figure 8: prefetched pages per page fault (AMPoM's aggressiveness).

Paper shape: STREAM draws by far the deepest prefetching (highest paging
rate), DGEMM and FFT considerably less *relative to their fault volume*,
RandomAccess the least (pattern unclear -> baseline read-ahead only).
"""

from __future__ import annotations

from repro.experiments import figures
from repro.metrics.report import format_table

from ._common import emit


def bench_fig8_prefetch_aggressiveness(benchmark):
    matrix = benchmark.pedantic(
        lambda: figures.run_matrix(schemes=("AMPoM",), scale=figures.DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    f8 = figures.figure8(matrix)
    rows = []
    for kernel, series in f8.items():
        for mb, v in series:
            rows.append([kernel, mb, v])
    emit("fig8_prefetched_per_fault", format_table(["kernel", "MB", "pages/fault"], rows))

    largest = {k: v[-1][1] for k, v in f8.items()}
    assert largest["RandomAccess"] == min(largest.values())
    assert largest["STREAM"] > 5 * largest["RandomAccess"]
    assert largest["STREAM"] > largest["FFT"]
    # RandomAccess retains a small read-ahead baseline (section 5.3).
    assert largest["RandomAccess"] > 1.0
