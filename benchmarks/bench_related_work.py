"""Related-work comparison: AMPoM vs FFA (file server) vs V-system pre-copy.

Section 6 positions AMPoM against the classic mechanisms; this benchmark
puts the implemented baselines side by side on one workload: freeze time,
total time, and the network traffic each moves.
"""

from __future__ import annotations

from repro.cluster.runner import MigrationRun
from repro.experiments import figures
from repro.metrics.report import format_table
from repro.migration.ampom import AmpomMigration
from repro.migration.ffa import FfaMigration
from repro.migration.noprefetch import NoPrefetchMigration
from repro.migration.openmosix import OpenMosixMigration
from repro.migration.precopy import PrecopyMigration
from repro.units import mib
from repro.workloads.hpcc import hpcc_workload

from ._common import emit

STRATEGIES = {
    "openMosix": OpenMosixMigration,
    "Precopy": lambda: PrecopyMigration(dirty_rate_pps=2000.0),
    "FFA": FfaMigration,
    "NoPrefetch": NoPrefetchMigration,
    "AMPoM": AmpomMigration,
}


def _sweep():
    rows = []
    for name, factory in STRATEGIES.items():
        workload = hpcc_workload("STREAM", 230, scale=figures.DEFAULT_SCALE)
        run = MigrationRun(
            workload, factory(), config=figures.scaled_config(figures.DEFAULT_SCALE)
        )
        r = run.execute()
        moved = run.outcome.bytes_transferred / mib(1)
        rows.append((name, r.freeze_time, r.total_time, moved, r.extra))
    return rows


def bench_related_work(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "related_work_comparison",
        format_table(
            ["strategy", "freeze s", "total s", "freeze MiB"],
            [r[:4] for r in rows],
        ),
    )
    data = {name: (freeze, total) for name, freeze, total, _, _ in rows}
    # Freeze ordering: the lightweight schemes beat the copy-everything ones.
    assert data["NoPrefetch"][0] < data["AMPoM"][0] < data["openMosix"][0]
    assert data["Precopy"][0] < data["openMosix"][0]
    # AMPoM's total beats the demand-paging baselines.
    assert data["AMPoM"][1] < data["NoPrefetch"][1]
    assert data["AMPoM"][1] < data["FFA"][1]
