"""Proportional-share CPU model.

A node's CPU is shared equally among its runnable processes, like the
Linux 2.4 scheduler does for equal-priority CPU-bound tasks.  A process
computing for ``w`` seconds of CPU work therefore occupies
``w / share()`` seconds of wall time.  The model also accumulates busy
time so the monitoring daemon can report node utilization.
"""

from __future__ import annotations

from ..errors import SimulationError


class CpuModel:
    """CPU sharing and utilization accounting for one node."""

    def __init__(self, cpu_hz: float) -> None:
        if cpu_hz <= 0:
            raise SimulationError(f"cpu_hz must be positive: {cpu_hz}")
        self.cpu_hz = cpu_hz
        self._runnable = 0
        self._busy_time = 0.0

    @property
    def runnable(self) -> int:
        """Number of currently runnable (CPU-demanding) processes."""
        return self._runnable

    def share(self) -> float:
        """CPU fraction available to one additional runnable process."""
        return 1.0 / max(self._runnable, 1)

    def acquire(self) -> None:
        """A process became runnable on this CPU."""
        self._runnable += 1

    def release(self) -> None:
        """A runnable process blocked or exited."""
        if self._runnable <= 0:
            raise SimulationError("release() without matching acquire()")
        self._runnable -= 1

    # ------------------------------------------------------------------
    def stretch(self) -> float:
        """Wall-time multiplier for CPU work under the current load.

        With ``k`` runnable processes (including the one asking), each gets
        ``1/k`` of the CPU, so work takes ``k`` times longer.
        """
        return float(max(self._runnable, 1))

    def charge(self, cpu_seconds: float) -> None:
        """Account ``cpu_seconds`` of busy time (for utilization reports)."""
        if cpu_seconds < 0:
            raise SimulationError(f"cannot charge negative CPU time: {cpu_seconds}")
        self._busy_time += cpu_seconds

    def utilization(self, elapsed: float) -> float:
        """Mean utilization over ``elapsed`` wall seconds since start."""
        if elapsed <= 0:
            return 0.0
        return min(self._busy_time / elapsed, 1.0)
