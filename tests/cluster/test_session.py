"""Tests for the ScenarioRuntime: multi-hop re-migration, wrapper parity,
and the scheduler-driven placement loop."""

from __future__ import annotations

import inspect

import pytest

from repro.cluster import multi as multi_mod
from repro.cluster import runner as runner_mod
from repro.cluster.runner import MigrationRun
from repro.cluster.scheduler import SchedulerDriver
from repro.cluster.session import ScenarioRuntime
from repro.cluster.topology import (
    FILE_SERVER,
    HOME,
    MigrantSpec,
    NodeGraph,
    ScenarioSpec,
    two_node_spec,
)
from repro.config import CheckSpec, FaultSpec, SimulationConfig
from repro.errors import MigrationError
from repro.migration.ampom import AmpomMigration
from repro.migration.ffa import FfaMigration
from repro.migration.noprefetch import NoPrefetchMigration
from repro.migration.openmosix import OpenMosixMigration
from repro.units import mib
from repro.workloads.synthetic import SequentialWorkload

CHECKED = SimulationConfig(checks=CheckSpec(enabled=True))


def _three_hop_spec(strategy, config=CHECKED, hop_delay=0.02, faults=None):
    nodes = [HOME, "n1", "n2"]
    if isinstance(strategy, FfaMigration):
        nodes.append(FILE_SERVER)
    if faults is not None:
        config = config.with_(faults=faults)
    return ScenarioSpec(
        graph=NodeGraph(tuple(nodes)),
        migrants=(
            MigrantSpec(
                workload=SequentialWorkload(mib(1), sweeps=2),
                strategy=strategy,
                path=(HOME, "n1", "n2"),
                hop_delays=(hop_delay,),
            ),
        ),
        config=config,
    )


# ----------------------------------------------------------------------
# two-node equivalence + lifecycle
# ----------------------------------------------------------------------
def test_two_node_spec_matches_migration_run():
    direct = MigrationRun(
        SequentialWorkload(mib(1), sweeps=2), AmpomMigration()
    ).execute()
    via_spec = ScenarioRuntime(
        two_node_spec(SequentialWorkload(mib(1), sweeps=2), AmpomMigration())
    ).execute()[0]
    assert via_spec.to_dict() == direct.to_dict()


def test_runtime_single_use():
    runtime = ScenarioRuntime(
        two_node_spec(SequentialWorkload(mib(1)), AmpomMigration())
    )
    runtime.execute()
    with pytest.raises(MigrationError):
        runtime.execute()
    runtime2 = ScenarioRuntime(
        two_node_spec(SequentialWorkload(mib(1)), AmpomMigration())
    )
    runtime2.measure_freeze()
    with pytest.raises(MigrationError):
        runtime2.execute()


# ----------------------------------------------------------------------
# multi-hop re-migration (section 3.2)
# ----------------------------------------------------------------------
def test_three_hop_residency_conservation_and_transit_deputy():
    runtime = ScenarioRuntime(_three_hop_spec(AmpomMigration()))
    result = runtime.execute()[0]
    assert result.extra["hops"] == 2.0

    outcome = runtime.outcomes[0]
    service = outcome.page_service
    # Home deputy + one transit deputy on n1.
    assert len(service.deputies) == 2
    home_deputy, transit = service.deputies

    # The transit deputy drained pages to n2 (demand + prefetch routing).
    assert transit.pages_served > 0
    transit.audit_ledger()
    home_deputy.audit_ledger()

    # Home-dependency forwarding: the home deputy's replies now flow
    # directly to the final node, not through n1.
    assert home_deputy.reply_channel is runtime.cluster.network.direction(
        HOME, "n2"
    )

    # Residency conservation: every page is in exactly one state, and on a
    # clean run every remote page is stored by exactly the deputy chain.
    res = outcome.residency
    sets = res.state_sets()
    assert sum(len(s) for s in sets.values()) == res.total_pages
    names = list(sets)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            assert not (sets[a] & sets[b])
    hpt_union = home_deputy.hpt.pages | transit.hpt.pages
    assert sets["remote"] <= hpt_union
    assert hpt_union <= sets["remote"] | sets["in_flight"]

    checker = runtime.checkers[0]
    assert checker is not None and checker.deep_audits > 0


@pytest.mark.parametrize(
    "strategy_cls",
    (AmpomMigration, OpenMosixMigration, NoPrefetchMigration, FfaMigration),
    ids=("AMPoM", "openMosix", "NoPrefetch", "FFA"),
)
def test_three_hop_completes_under_every_scheme(strategy_cls):
    runtime = ScenarioRuntime(_three_hop_spec(strategy_cls()))
    result = runtime.execute()[0]
    assert result.extra["hops"] == 2.0
    assert result.total_time == pytest.approx(
        result.freeze_time + result.run_time
    )
    checker = runtime.checkers[0]
    assert checker is not None and checker.deep_audits > 0


def test_three_hop_lossy_links():
    faults = FaultSpec(
        loss_rate=0.05, duplicate_rate=0.02, delay_rate=0.1, delay_s=0.005
    )
    config = SimulationConfig(seed=7, checks=CheckSpec(enabled=True))
    runtime = ScenarioRuntime(
        _three_hop_spec(AmpomMigration(), config=config, faults=faults)
    )
    result = runtime.execute()[0]
    assert result.extra["hops"] == 2.0
    c = result.counters
    # The injected faults actually bit: something was dropped and recovered.
    assert c.messages_dropped > 0
    assert c.retransmits + c.prefetch_writeoffs > 0
    # The deputy-chain ledgers still balance under loss.
    for deputy in runtime.outcomes[0].page_service.deputies:
        deputy.audit_ledger()
    checker = runtime.checkers[0]
    assert checker is not None and checker.deep_audits > 0


def test_three_hop_is_deterministic():
    first = ScenarioRuntime(_three_hop_spec(AmpomMigration())).execute()[0]
    second = ScenarioRuntime(_three_hop_spec(AmpomMigration())).execute()[0]
    assert first.to_dict() == second.to_dict()


# ----------------------------------------------------------------------
# wrapper parity (satellite: MigrationRun / MultiMigrationRun stay thin)
# ----------------------------------------------------------------------
#: Keyword arguments both drivers must accept with identical defaults.
SHARED_KWARGS = (
    "config",
    "with_infod",
    "shaped_bandwidth_bps",
    "shaped_latency_s",
    "max_events",
    "capacity_pages",
    "fault_log",
    "obs",
)

#: Imperative wiring that must live only in session.py / cluster.py.
FORBIDDEN_WIRING = (
    "Cluster(",
    "Network(",
    ".connect(",
    "InfoDaemon(",
    "install_lossy_link",
    "TrafficShaper(",
    "FaultPlan(",
)


def test_wrapper_kwarg_parity():
    single = inspect.signature(MigrationRun.__init__).parameters
    multi = inspect.signature(multi_mod.MultiMigrationRun.__init__).parameters
    for name in SHARED_KWARGS:
        assert name in single, f"MigrationRun lost {name!r}"
        assert name in multi, f"MultiMigrationRun lost {name!r}"
        assert single[name].default == multi[name].default, (
            f"default for {name!r} differs between the two drivers"
        )


@pytest.mark.parametrize("module", (runner_mod, multi_mod), ids=("runner", "multi"))
def test_wrappers_contain_no_wiring(module):
    source = inspect.getsource(module)
    for needle in FORBIDDEN_WIRING:
        assert needle not in source, (
            f"{module.__name__} builds infrastructure ({needle!r}); "
            "node/link construction belongs to ScenarioRuntime"
        )


# ----------------------------------------------------------------------
# scheduler-driven placement (satellite: seeded 4-node imbalance)
# ----------------------------------------------------------------------
def _imbalanced_driver():
    graph = NodeGraph(("n0", "n1", "n2", "n3"))
    placements = [
        (SequentialWorkload(mib(1), sweeps=8), "n0") for _ in range(6)
    ]
    return SchedulerDriver(
        graph,
        placements,
        AmpomMigration,
        config=SimulationConfig(seed=11),
        balance_interval=0.2,
    )


def test_scheduler_driver_migrates_off_the_loaded_node():
    drive = _imbalanced_driver().execute()
    assert drive.decisions, "the imbalance never triggered a migration"
    assert all(d.src == "n0" for d in drive.decisions)
    assert drive.migrants
    assert len(drive.results) == len(drive.migrants)
    for migrant, result in zip(drive.migrants, drive.results):
        assert migrant.path[0] == "n0"
        assert result.total_time > 0.0


def test_scheduler_driver_is_deterministic():
    first = _imbalanced_driver().execute()
    second = _imbalanced_driver().execute()
    assert first.decisions == second.decisions
    assert [r.to_dict() for r in first.results] == [
        r.to_dict() for r in second.results
    ]
