#!/usr/bin/env python
"""AMPoM adapting to network conditions (paper section 5.5).

Runs the same DGEMM migrant over Fast Ethernet and over a tc-shaped
broadband link (6 Mb/s, 2 ms), and additionally demonstrates *mid-run*
adaptation: the link is reshaped while the migrant executes, and the
oM_infoD daemon's measurements steer the prefetcher's dependent-zone size
through eq. 3's ``t = 2*t0 + td + 1/r`` horizon.

Run:  python examples/network_adaptation.py
"""

from repro import AmpomMigration, MigrationRun, hpcc_workload, mbit_per_s, ms
from repro.metrics.report import format_table


def run_static() -> None:
    rows = []
    for label, bw, lat in (
        ("Fast Ethernet 100Mb/s", None, None),
        ("broadband 6Mb/s/2ms", mbit_per_s(6.0), ms(2.0)),
    ):
        workload = hpcc_workload("DGEMM", 115, scale=1 / 4)
        run = MigrationRun(
            workload,
            AmpomMigration(),
            shaped_bandwidth_bps=bw,
            shaped_latency_s=lat,
        )
        result = run.execute()
        cond = run.infod.conditions()
        rows.append(
            [
                label,
                result.total_time,
                result.budget.stall,
                result.counters.prefetched_pages_per_fault,
                cond.rtt_s * 1e3,
            ]
        )
    print("Static network comparison (DGEMM, quarter scale):\n")
    print(
        format_table(
            ["network", "total s", "stall s", "prefetch/fault", "measured RTT ms"], rows
        )
    )


def run_dynamic() -> None:
    """Reshape the link to broadband halfway through the run."""
    workload = hpcc_workload("STREAM", 115, scale=1 / 4)
    run = MigrationRun(workload, AmpomMigration())
    shaper = run.cluster.shaper("home", "dest")
    shaper.schedule(run.sim, at=2.0, bandwidth_bps=mbit_per_s(6.0), latency_s=ms(2.0))
    result = run.execute()
    cond = run.infod.conditions()
    print("\nMid-run reshaping (STREAM; link drops to 6 Mb/s at t=2 s):")
    print(f"  total time          : {result.total_time:.2f} s")
    print(f"  stall time          : {result.budget.stall:.2f} s")
    print(f"  final measured RTT  : {cond.rtt_s * 1e3:.2f} ms")
    print(f"  final est. bandwidth: {cond.available_bw_bps / 1e6:.3f} MB/s")
    print("  (the daemon's estimates track the shaped link, growing the")
    print("   prefetch horizon so pipelining continues at the lower rate)")


if __name__ == "__main__":
    run_static()
    run_dynamic()
