"""Reproduction harness: one generator per table/figure of the paper.

``figures.figureN(...)`` returns the data series the paper's figure N
plots; the benchmark suite (``benchmarks/``) times these generators and
prints the series, and EXPERIMENTS.md records the paper-vs-measured
comparison.
"""

from . import calibration, export, figures, tables

__all__ = ["calibration", "export", "figures", "tables"]
