"""Background load generator.

Puts extra runnable processes on a node over scheduled windows, stretching
the migrant's CPU share.  Used to exercise the ``c``/``c'`` terms of
AMPoM's eq. 3 (the algorithm prefetches less when the process cannot
consume pages quickly) and by the scheduler examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..node.node import Node
from ..sim import Simulator


@dataclass(frozen=True, slots=True)
class LoadWindow:
    """``n_procs`` CPU hogs on the node during [start, start + duration)."""

    start: float
    duration: float
    n_procs: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0 or self.n_procs < 1:
            raise ConfigurationError(f"invalid load window: {self}")


class BackgroundLoad:
    """Applies a schedule of load windows to a node."""

    def __init__(self, sim: Simulator, node: Node, windows: list[LoadWindow]) -> None:
        self.sim = sim
        self.node = node
        self.windows = list(windows)
        for window in self.windows:
            sim.schedule_at(window.start, self._acquire_n(window.n_procs))
            sim.schedule_at(window.start + window.duration, self._release_n(window.n_procs))

    def _acquire_n(self, n: int):
        def apply() -> None:
            for _ in range(n):
                self.node.cpu.acquire()

        return apply

    def _release_n(self, n: int):
        def apply() -> None:
            for _ in range(n):
                self.node.cpu.release()

        return apply
