"""Unit tests for unit constants and conversions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3
    assert units.PAGE_SIZE == 4096
    assert units.MPT_ENTRY_BYTES == 6


def test_size_conversions():
    assert units.mib(1) == 1024**2
    assert units.mib(0.5) == 512 * 1024
    assert units.kib(2) == 2048


def test_rate_conversion():
    # 100 Mb/s = 12.5 MB/s.
    assert units.mbit_per_s(100) == pytest.approx(12.5e6)


def test_time_conversions():
    assert units.ms(2) == pytest.approx(0.002)
    assert units.us(3) == pytest.approx(3e-6)


def test_bytes_to_mib():
    assert units.bytes_to_mib(units.mib(3)) == pytest.approx(3.0)


def test_pages_for_exact_and_ceiling():
    assert units.pages_for(4096) == 1
    assert units.pages_for(4097) == 2
    assert units.pages_for(0) == 0


def test_pages_for_negative_rejected():
    with pytest.raises(ValueError):
        units.pages_for(-1)


@given(st.integers(min_value=0, max_value=2**40))
def test_pages_for_covers_size(size):
    pages = units.pages_for(size)
    assert pages * units.PAGE_SIZE >= size
    assert (pages - 1) * units.PAGE_SIZE < size or pages == 0
