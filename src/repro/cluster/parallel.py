"""Deterministic multiprocessing fan-out: scenario sweeps and intra-run shards.

Every sweep in this repo — the figure matrix, the golden-trace scenario
matrix, ablation grids — is a list of *fully pinned, independent* runs:
each cell fixes its own seed, workload, and config, and no cell reads
another's output.  That makes them trivially parallel, and because each
worker computes exactly what the sequential loop would have computed (same
seeds, same float ops), fanning out changes wall time only, never results.

:func:`parallel_map` is the one primitive: ``map(fn, items)`` across a
process pool with the *input* ordering of results guaranteed.  It degrades
to a plain sequential loop when parallelism is disabled (``jobs=1``),
pointless (one item), or unavailable (no ``fork`` start method — the
workers inherit the parent's imported modules for free under ``fork``, and
we refuse to pay the re-import cost of ``spawn`` for what is purely an
optimization).

On top of that sits **intra-run sharding** (:func:`plan_scenario_shards` /
:func:`execute_sharded`): one scenario's migrants are partitioned into
connected components over their shared resources (path nodes, and the
file server for FFA), and each component is simulated in its own forked
worker.  This is sound because disjoint components share no node, link,
infod, or deputy — every event a component schedules originates from its
own processes and lands back on its own nodes, so deleting the *other*
components from the graph changes nothing the component's migrants can
observe: same per-migrant event interleaving, same keyed RNG streams
(``migrant-{gid}`` / ``retry-{gid}`` names are derived from *global*
migrant indices), same float-op order, byte-identical results.  Whenever a
message *could* cross a shard boundary — shared nodes, fault injection's
single seeded wire stream, a global event cap, an attached observability
bundle — the planner quiesces to the sequential kernel and records why in
:attr:`~repro.sim.shard.ShardPlan.sequential_reason`.

Library entry points default to **sequential** (``jobs=None`` resolves via
the ``REPRO_JOBS`` environment variable for sweeps and ``REPRO_SHARD`` for
intra-run sharding, else 1) so importing code never forks behind a
caller's back; the CLI passes ``--jobs auto`` where a sweep is the whole
command.
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from ..sim.shard import ShardPlan, connected_components

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..migration.executor import ExecutionResult
    from ..obs import Observability
    from .topology import ScenarioSpec

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable enabling intra-run sharding (a worker count or
#: ``auto``) when the caller does not pass ``jobs`` explicitly.
SHARD_ENV = "REPRO_SHARD"


def resolve_jobs(
    jobs: int | str | None,
    limit: int | None = None,
    env: str = JOBS_ENV,
) -> int:
    """Normalize a jobs request to a worker count (>= 1).

    ``None`` reads ``env`` (default :data:`JOBS_ENV`; empty means 1 —
    sequential); the string ``"auto"`` (or a non-positive count) means one
    worker per CPU.  ``limit`` clamps the result to the number of work
    items so library callers can pass ``"auto"`` without over-forking:
    ``resolve_jobs("auto", limit=len(items))``.
    """
    if jobs is None:
        env_value = os.environ.get(env, "").strip()
        if not env_value:
            return 1
        jobs = env_value
    if isinstance(jobs, str):
        jobs = -1 if jobs.lower() == "auto" else int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if limit is not None:
        jobs = min(jobs, max(limit, 1))
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | str | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` across a worker pool, results in input order.

    ``fn`` and every item must be picklable (a module-level function and
    plain data).  Results are returned in the order of ``items`` no matter
    which worker finishes first, so a parallel sweep is a drop-in
    replacement for the sequential loop.  The first worker exception
    propagates to the caller, as the sequential loop's would.
    """
    items = list(items)
    n_workers = resolve_jobs(jobs, limit=len(items))
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        ctx = get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return [fn(item) for item in items]
    with ctx.Pool(processes=n_workers) as pool:
        # chunksize=1: scenario cells are coarse (milliseconds to seconds),
        # so per-task dispatch overhead is noise and the smallest chunks
        # give the best load balance across unequal cells.
        return pool.map(fn, items, chunksize=1)


def _migrant_resources(spec: "ScenarioSpec") -> list[set]:
    """Resource keys per migrant: its path nodes, plus the file server for
    FFA (whose flush stream serializes on the shared ``fs`` links)."""
    from .topology import FILE_SERVER, _wants_file_server

    resources: list[set] = []
    for migrant in spec.migrants:
        keys = set(migrant.path)
        if _wants_file_server(migrant.strategy):
            keys.add(FILE_SERVER)
        resources.append(keys)
    return resources


def plan_scenario_shards(
    spec: "ScenarioSpec",
    obs: "Observability | None" = None,
    jobs: int | str | None = None,
) -> ShardPlan:
    """Decide whether ``spec``'s migrants can be simulated in parallel shards.

    Returns a parallel :class:`ShardPlan` only when the migrants split into
    >= 2 node-disjoint components *and* nothing couples them globally.
    Every other case quiesces to the sequential kernel with the reason
    recorded — callers never need to second-guess the fallback.
    """
    n = len(spec.migrants)

    def sequential(reason: str) -> ShardPlan:
        return ShardPlan(
            shards=(tuple(range(n)),), jobs=1, sequential_reason=reason
        )

    workers = resolve_jobs(jobs, limit=n, env=SHARD_ENV)
    if workers <= 1:
        return sequential("parallelism disabled (jobs <= 1)")
    if n < 2:
        return sequential("fewer than two migrants")
    if obs is not None and obs.active:
        return sequential("an observability bundle needs one merged trace")
    if spec.max_events is not None:
        return sequential("a global max_events cap counts across all migrants")
    config = spec.resolved_config()
    if config.faults.active:
        return sequential(
            "message fault injection draws from one seeded wire stream"
        )
    if config.node_faults.active:
        return sequential(
            "the node-fault schedule couples detection across nodes"
        )
    if any(m.fault_log is not None for m in spec.migrants):
        return sequential("caller-owned fault logs cannot cross workers")
    components = connected_components(n, _migrant_resources(spec))
    if len(components) < 2:
        return sequential(
            "all migrants share nodes; a cross-migrant message would cross "
            "the epoch boundary (quiesce fallback)"
        )
    return ShardPlan(shards=components, jobs=workers)


def component_spec(spec: "ScenarioSpec", indices: Sequence[int]) -> "ScenarioSpec":
    """Restrict ``spec`` to the migrants in ``indices`` and the subgraph
    they can reach.

    Node order, link order, and background windows are preserved from the
    parent spec so the sub-scenario's construction (cluster channels,
    keyed RNG streams) matches what the sequential run builds for these
    nodes.
    """
    from .topology import FILE_SERVER, NodeGraph, ScenarioSpec, _wants_file_server

    migrants = tuple(spec.migrants[i] for i in indices)
    needed = set()
    for migrant in migrants:
        needed.update(migrant.path)
    if any(_wants_file_server(m.strategy) for m in migrants):
        needed.add(FILE_SERVER)
    nodes = tuple(n for n in spec.graph.nodes if n in needed)
    links = tuple(
        link for link in spec.graph.links if link.a in needed and link.b in needed
    )
    background = {
        node: windows for node, windows in spec.background.items() if node in needed
    }
    return ScenarioSpec(
        graph=NodeGraph(nodes=nodes, links=links),
        migrants=migrants,
        config=spec.config,
        background=background,
    )


#: Parent spec for forked shard workers.  Set by :func:`execute_sharded`
#: immediately before the pool forks (the workers inherit it) — strategy
#: factories and workloads need not be picklable this way; only the index
#: tuples and the plain-data :class:`ExecutionResult` lists cross the pipe.
_SHARD_SPEC: "ScenarioSpec | None" = None


def _run_scenario_shard(indices: tuple[int, ...]) -> list:
    from .session import ScenarioRuntime

    spec = _SHARD_SPEC
    if spec is None:  # pragma: no cover - defensive: fork lost the global
        raise RuntimeError("_SHARD_SPEC is unset in the shard worker")
    runtime = ScenarioRuntime(
        component_spec(spec, indices),
        global_ids=tuple(indices),
        global_count=len(spec.migrants),
    )
    return runtime.execute()


def execute_sharded(
    spec: "ScenarioSpec",
    obs: "Observability | None" = None,
    jobs: int | str | None = None,
    plan: ShardPlan | None = None,
) -> "list[ExecutionResult]":
    """Execute ``spec`` shard-parallel (or sequentially per its plan).

    Results come back in migrant order, byte-identical to what one
    :class:`ScenarioRuntime` over the full spec would produce.
    """
    from .session import ScenarioRuntime

    global _SHARD_SPEC
    if plan is None:
        plan = plan_scenario_shards(spec, obs=obs, jobs=jobs)
    if not plan.parallel:
        return ScenarioRuntime(spec, obs=obs).execute()
    _SHARD_SPEC = spec
    try:
        shard_results = parallel_map(
            _run_scenario_shard, list(plan.shards), jobs=plan.jobs
        )
    finally:
        _SHARD_SPEC = None
    results: list = [None] * len(spec.migrants)
    for indices, shard in zip(plan.shards, shard_results):
        for index, result in zip(indices, shard):
            results[index] = result
    return results


__all__ = [
    "JOBS_ENV",
    "SHARD_ENV",
    "ShardPlan",
    "component_spec",
    "execute_sharded",
    "parallel_map",
    "plan_scenario_shards",
    "resolve_jobs",
]
