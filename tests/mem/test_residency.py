"""Unit and property tests for the residency state machine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryStateError
from repro.mem.residency import ResidencyTracker


def make(remote=range(10), mapped=()):
    return ResidencyTracker(remote_pages=remote, mapped_pages=mapped)


def test_initial_state():
    res = make(remote=[1, 2], mapped=[0])
    assert res.mapped == {0}
    assert res.remote == frozenset({1, 2})
    assert res.n_remote == 2 and res.n_in_flight == 0 and res.n_buffered == 0


def test_overlapping_mapped_and_remote_rejected():
    with pytest.raises(MemoryStateError):
        ResidencyTracker(remote_pages=[1], mapped_pages=[1])


def test_fetch_lifecycle():
    res = make()
    res.start_fetch(3, arrival=1.0)
    assert res.is_local_or_pending(3)
    assert not res.is_remote(3)
    assert res.arrival_time(3) == 1.0
    assert res.absorb_arrivals(0.5) == 0
    assert res.absorb_arrivals(1.0) == 1
    assert 3 in res.buffered
    assert res.map_buffered() == [3]
    assert 3 in res.mapped


def test_fetch_non_remote_rejected():
    res = make(remote=[1], mapped=[0])
    with pytest.raises(MemoryStateError):
        res.start_fetch(0, 1.0)
    res.start_fetch(1, 1.0)
    with pytest.raises(MemoryStateError):
        res.start_fetch(1, 2.0)


def test_arrival_time_unknown_page():
    with pytest.raises(MemoryStateError):
        make().arrival_time(3)


def test_absorb_in_arrival_order():
    res = make()
    res.start_fetch(5, arrival=2.0)
    res.start_fetch(6, arrival=1.0)
    assert res.absorb_arrivals(1.5) == 1
    assert res.buffered == frozenset({6})
    assert res.absorb_arrivals(2.0) == 1
    assert res.buffered == frozenset({5, 6})


def test_map_created():
    res = make(remote=[1])
    res.map_created(50)
    assert 50 in res.mapped
    with pytest.raises(MemoryStateError):
        res.map_created(50)
    with pytest.raises(MemoryStateError):
        res.map_created(1)  # still remote


def test_unmap_returns_page_to_remote():
    res = make(remote=[], mapped=[7])
    res.unmap(7)
    assert res.is_remote(7)
    with pytest.raises(MemoryStateError):
        res.unmap(7)


@given(
    st.sets(st.integers(min_value=0, max_value=200), min_size=1, max_size=50),
    st.data(),
)
def test_states_are_disjoint_invariant(remote_pages, data):
    """Every page is in exactly one state at every step."""
    res = ResidencyTracker(remote_pages=remote_pages)
    universe = set(remote_pages)
    clock = 0.0
    for _ in range(data.draw(st.integers(min_value=1, max_value=30))):
        action = data.draw(st.sampled_from(["fetch", "absorb", "map"]))
        if action == "fetch" and res.n_remote:
            vpn = data.draw(st.sampled_from(sorted(res.remote)))
            clock += data.draw(st.floats(min_value=0, max_value=1))
            res.start_fetch(vpn, arrival=clock + 0.5)
        elif action == "absorb":
            clock += data.draw(st.floats(min_value=0, max_value=2))
            res.absorb_arrivals(clock)
        elif action == "map":
            res.map_buffered()
        states = [res.mapped, set(res.buffered), set(res.in_flight), set(res.remote)]
        assert set().union(*states) == universe
        total = sum(len(s) for s in states)
        assert total == len(universe)  # pairwise disjoint
