"""Generic primitives for sharding one simulation into independent epochs.

A discrete-event run can be fanned out across workers only when the work
splits into *provably non-interacting* pieces: no message, shared node, or
RNG stream may cross the cut.  This module holds the scheduling-agnostic
machinery — resource-based partitioning and the deterministic stream
merge — while :mod:`repro.cluster.parallel` applies it to cluster
scenarios (deciding *what* counts as a shared resource and *when* to fall
back to the sequential kernel).

Everything here is deterministic: components come out ordered by their
smallest member with ascending members, and :func:`merge_streams` breaks
key ties by (stream rank, position) so a merged log is byte-identical to
the log a sequential run would have produced, given the shards preserved
their within-shard order.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge as _heapq_merge
from typing import Callable, Hashable, Iterable, Sequence


def connected_components(
    n_items: int, resources: Sequence[Iterable[Hashable]]
) -> tuple[tuple[int, ...], ...]:
    """Partition items into components linked by shared resources.

    ``resources[i]`` is the set of resource keys item ``i`` holds; two
    items sharing any key land in the same component (transitively).
    Union-find with path halving; output is deterministic — components
    ordered by smallest member, members ascending.
    """
    if len(resources) != n_items:
        raise ValueError(
            f"resources has {len(resources)} entries for {n_items} items"
        )
    parent = list(range(n_items))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    owner: dict[Hashable, int] = {}
    for i, keys in enumerate(resources):
        for key in keys:
            j = owner.setdefault(key, i)
            if j != i:
                ri, rj = find(i), find(j)
                if ri != rj:
                    # Root at the smaller index: keeps find() results
                    # independent of iteration-order accidents.
                    if rj < ri:
                        ri, rj = rj, ri
                    parent[rj] = ri
    groups: dict[int, list[int]] = {}
    for i in range(n_items):
        groups.setdefault(find(i), []).append(i)
    return tuple(tuple(groups[root]) for root in sorted(groups))


def merge_streams(
    streams: Sequence[Sequence], key: Callable[[object], tuple] | None = None
) -> list:
    """Deterministic k-way merge of per-shard event streams.

    Items are ordered by ``key(item)`` (e.g. ``(time, seq, node)``), with
    ties broken by stream rank then by position within the stream — the
    order a sequential run interleaving the shards would have produced.
    Each stream must already be sorted by its own key.
    """
    if key is None:
        key = lambda item: (item,)  # noqa: E731 - trivial identity key

    decorated = (
        [(key(item), rank, pos, item) for pos, item in enumerate(stream)]
        for rank, stream in enumerate(streams)
    )
    return [item for _, _, _, item in _heapq_merge(*decorated)]


@dataclass(frozen=True)
class ShardPlan:
    """How (or whether) one run splits into independent shards.

    ``shards`` always covers every item exactly once; a sequential plan is
    a single shard with ``sequential_reason`` explaining the fallback.
    """

    #: Disjoint item-index groups, each independently simulatable.
    shards: tuple[tuple[int, ...], ...]
    #: Resolved worker count for the fan-out (1 = sequential).
    jobs: int
    #: Why the planner fell back to sequential execution (None = it
    #: didn't; the quiesce fallback and the config gates set this).
    sequential_reason: str | None = None

    @property
    def parallel(self) -> bool:
        """Whether this plan actually fans out."""
        return (
            self.sequential_reason is None
            and self.jobs > 1
            and len(self.shards) > 1
        )


__all__ = ["ShardPlan", "connected_components", "merge_streams"]
