"""Telemetry: fault/prefetch counters, time accounting, report formatting."""

from .counters import Counters
from .eventlog import FaultEvent, FaultLog
from .report import format_table, percent_change
from .timeline import TimeBudget

__all__ = [
    "Counters",
    "FaultEvent",
    "FaultLog",
    "TimeBudget",
    "format_table",
    "percent_change",
]
