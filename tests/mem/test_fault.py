"""Unit tests for the fault taxonomy."""

from repro.mem.fault import FaultKind


def test_blocking_kinds():
    assert FaultKind.MAJOR.blocking
    assert FaultKind.IN_FLIGHT_WAIT.blocking
    assert not FaultKind.MINOR_BUFFERED.blocking
    assert not FaultKind.MINOR_CREATE.blocking


def test_all_kinds_enumerated():
    assert {k.value for k in FaultKind} == {
        "major",
        "in_flight_wait",
        "minor_buffered",
        "minor_create",
    }
