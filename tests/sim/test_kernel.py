"""Unit tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Timeout


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_advances_clock(sim):
    fired = []
    sim.schedule(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(4.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4.0]


def test_schedule_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_raises(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0


def test_run_until_advances_clock_even_without_events(sim):
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_events_scheduled_during_run_fire(sim):
    fired = []

    def outer():
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["inner"]
    assert sim.now == 2.0


def test_max_events_guard(sim):
    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=10)


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_run_until_complete_returns_process_result(sim):
    def proc():
        yield Timeout(3.0)
        return "done"

    p = sim.spawn(proc())
    assert sim.run_until_complete(p) == "done"
    assert sim.now == 3.0


def test_run_until_complete_detects_deadlock(sim):
    from repro.sim import Completion

    cond = Completion(sim)

    def proc():
        yield cond  # never triggered

    p = sim.spawn(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_run_until_complete_propagates_errors(sim):
    def proc():
        yield Timeout(1.0)
        raise ValueError("boom")

    p = sim.spawn(proc())
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_complete(p)


def test_deterministic_ordering_of_simultaneous_events(sim):
    order = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]
