"""Concurrent multi-migrant scenarios: shared links, shared CPUs.

The single-:class:`~repro.cluster.runner.MigrationRun` experiments isolate
one migrant.  Real rebalancing events move several processes at once, and
their remote paging then *competes* for the same links and CPUs:

* bulk freezes and paging replies serialize on the shared home->dest
  channel (the FIFO link model), so openMosix's big freezes queue behind
  each other;
* every migrant's oM_infoD measurement sees the shared congestion, so
  AMPoM's horizon ``t`` grows and its pipelining deepens — the "prefetch
  more aggressively when the network is busy" behaviour, now driven by
  *other migrants'* traffic;
* the destination CPU is proportionally shared, feeding the ``c``/``c'``
  terms of eq. 3.

:class:`MultiMigrationRun` is a thin compatibility wrapper: it builds a
staggered multi-migrant two-node :class:`~repro.cluster.topology.ScenarioSpec`
and delegates all wiring to
:class:`~repro.cluster.session.ScenarioRuntime`.  It accepts the same
shared keyword arguments as :class:`~repro.cluster.runner.MigrationRun`
(asserted by the wrapper-parity test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..config import SimulationConfig
from ..errors import MigrationError
from ..metrics.eventlog import FaultLog
from ..migration.executor import ExecutionResult
from ..workloads.base import Workload
from .session import ScenarioRuntime
from .topology import (
    DEST,
    FILE_SERVER,
    HOME,
    LinkSpec,
    MigrantSpec,
    NodeGraph,
    ScenarioSpec,
    _wants_file_server,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

__all__ = ["DEST", "HOME", "MultiMigrationRun"]


class MultiMigrationRun:
    """Several migrants sharing one home->destination pair."""

    def __init__(
        self,
        workloads: Sequence[Workload],
        strategy_factory,
        config: SimulationConfig | None = None,
        stagger_s: float = 0.0,
        with_infod: bool = True,
        shaped_bandwidth_bps: float | None = None,
        shaped_latency_s: float | None = None,
        max_events: int | None = None,
        capacity_pages: int | None = None,
        fault_log: "FaultLog | None" = None,
        obs: "Observability | None" = None,
    ) -> None:
        if not workloads:
            raise MigrationError("need at least one workload")
        if stagger_s < 0:
            raise MigrationError(f"stagger_s must be non-negative: {stagger_s}")
        self.workloads = list(workloads)
        self.strategy_factory = strategy_factory
        self.stagger_s = stagger_s
        self.with_infod = with_infod
        self.shaped_bandwidth_bps = shaped_bandwidth_bps
        self.shaped_latency_s = shaped_latency_s
        self.max_events = max_events
        self.capacity_pages = capacity_pages
        self.fault_log = fault_log

        nodes = [HOME, DEST]
        if _wants_file_server(strategy_factory):
            nodes.append(FILE_SERVER)
        links: tuple[LinkSpec, ...] = ()
        if shaped_bandwidth_bps is not None or shaped_latency_s is not None:
            links = (
                LinkSpec(
                    HOME,
                    DEST,
                    shaped_bandwidth_bps=shaped_bandwidth_bps,
                    shaped_latency_s=shaped_latency_s,
                ),
            )
        migrants = tuple(
            MigrantSpec(
                workload=workload,
                strategy=strategy_factory,
                path=(HOME, DEST),
                start_s=i * stagger_s,
                with_infod=with_infod,
                capacity_pages=capacity_pages,
                fault_log=fault_log,
            )
            for i, workload in enumerate(self.workloads)
        )
        self._runtime = ScenarioRuntime(
            ScenarioSpec(
                graph=NodeGraph(tuple(nodes), links),
                migrants=migrants,
                config=config,
                max_events=max_events,
            ),
            obs=obs,
        )

    # -- delegated state -------------------------------------------------
    @property
    def config(self) -> SimulationConfig:
        return self._runtime.config

    @property
    def obs(self):
        return self._runtime.obs

    @property
    def sim(self):
        return self._runtime.sim

    @property
    def cluster(self):
        return self._runtime.cluster

    @property
    def outcomes(self):
        return self._runtime.outcomes

    @property
    def results(self):
        return self._runtime.results

    @property
    def infod(self):
        """The shared destination InfoDaemon (``None`` until a migrant
        with a prefetch policy needs one)."""
        for infod in self._runtime.migrant_infods:
            if infod is not None:
                return infod
        return None

    # --------------------------------------------------------------------
    def execute(self) -> list[ExecutionResult]:
        """Run all migrants to completion; returns their results in order."""
        if self._runtime.executed:
            raise MigrationError("MultiMigrationRun objects are single-use")
        return self._runtime.execute()

    @property
    def makespan(self) -> float:
        """Time until the last migrant finished."""
        if not self._runtime.executed:
            raise MigrationError("call execute() first")
        return self._runtime.sim.now
