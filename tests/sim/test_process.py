"""Unit tests for generator-based cooperative processes."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Completion, Simulator, Timeout


def test_timeout_resumes_later(sim):
    log = []

    def proc():
        log.append(("start", sim.now))
        yield Timeout(2.0)
        log.append(("end", sim.now))

    sim.spawn(proc())
    sim.run()
    assert log == [("start", 0.0), ("end", 2.0)]


def test_timeout_negative_raises():
    with pytest.raises(SimulationError):
        Timeout(-0.1)


def test_return_value_captured(sim):
    def proc():
        yield Timeout(1.0)
        return 42

    p = sim.spawn(proc())
    sim.run()
    assert p.finished
    assert p.result == 42


def test_exception_captured(sim):
    def proc():
        yield Timeout(1.0)
        raise RuntimeError("bad")

    p = sim.spawn(proc())
    sim.run()
    assert p.finished
    assert isinstance(p.error, RuntimeError)


def test_completion_wakes_waiters(sim):
    cond = Completion(sim)
    woken = []

    def waiter(name):
        value = yield cond
        woken.append((name, value, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(5.0, lambda: cond.succeed("payload"))
    sim.run()
    assert woken == [("a", "payload", 5.0), ("b", "payload", 5.0)]


def test_completion_succeed_twice_raises(sim):
    cond = Completion(sim)
    cond.succeed()
    with pytest.raises(SimulationError):
        cond.succeed()


def test_waiting_on_already_triggered_completion(sim):
    cond = Completion(sim)
    cond.succeed("early")
    got = []

    def waiter():
        value = yield cond
        got.append(value)

    sim.spawn(waiter())
    sim.run()
    assert got == ["early"]


def test_join_another_process(sim):
    def child():
        yield Timeout(3.0)
        return "child-result"

    def parent():
        proc = sim.spawn(child(), name="child")
        result = yield proc
        return ("parent-saw", result, sim.now)

    p = sim.spawn(parent())
    sim.run()
    assert p.result == ("parent-saw", "child-result", 3.0)


def test_join_finished_process(sim):
    def child():
        return "instant"
        yield  # pragma: no cover

    child_proc = sim.spawn(child())
    sim.run()

    def parent():
        result = yield child_proc
        return result

    p = sim.spawn(parent())
    sim.run()
    assert p.result == "instant"


def test_yield_unsupported_condition_errors(sim):
    def proc():
        yield "nonsense"

    p = sim.spawn(proc())
    sim.run()
    assert isinstance(p.error, SimulationError)


def test_interrupt_stops_process(sim):
    log = []

    def proc():
        while True:
            yield Timeout(1.0)
            log.append(sim.now)

    p = sim.spawn(proc())
    sim.schedule(2.5, p.interrupt)
    sim.run()
    assert log == [1.0, 2.0]
    assert p.finished


def test_two_processes_interleave(sim):
    log = []

    def ticker(name, period):
        for _ in range(3):
            yield Timeout(period)
            log.append((name, sim.now))

    sim.spawn(ticker("fast", 1.0))
    sim.spawn(ticker("slow", 2.0))
    sim.run()
    # At t=2.0 both are due; the slow ticker's event was scheduled earlier
    # (at t=0) so insertion order puts it first — determinism, not priority.
    assert log == [
        ("fast", 1.0),
        ("slow", 2.0),
        ("fast", 2.0),
        ("fast", 3.0),
        ("slow", 4.0),
        ("slow", 6.0),
    ]
