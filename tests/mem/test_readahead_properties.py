"""Property tests for the Linux-style read-ahead baseline.

Complements the unit tests in ``test_readahead.py``: Hypothesis drives
arbitrary access streams through :class:`LinuxReadAhead` and checks the
window's doubling/collapse invariants, and arbitrary (vpn, count, limit)
triples through :func:`sequential_successors` and checks its bounds.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.mem.readahead import LinuxReadAhead, sequential_successors


# ----------------------------------------------------------------------
# sequential_successors
# ----------------------------------------------------------------------
@given(
    vpn=st.integers(0, 10_000),
    count=st.integers(0, 512),
    limit=st.integers(1, 10_000),
)
def test_successors_bounds(vpn, count, limit):
    pages = list(sequential_successors(vpn, count, limit))
    assert len(pages) <= count
    assert pages == sorted(set(pages))  # strictly increasing, no dups
    for p in pages:
        assert vpn < p < limit


@given(vpn=st.integers(0, 1000), count=st.integers(0, 64))
def test_successors_exact_when_unbounded(vpn, count):
    pages = list(sequential_successors(vpn, count, limit=vpn + count + 1))
    assert pages == list(range(vpn + 1, vpn + 1 + count))


# ----------------------------------------------------------------------
# LinuxReadAhead
# ----------------------------------------------------------------------
WINDOW_PARAMS = st.integers(1, 6).flatmap(
    lambda lo_exp: st.integers(0, 4).map(lambda extra: (2**lo_exp, 2 ** (lo_exp + extra)))
)


@given(params=WINDOW_PARAMS, accesses=st.lists(st.integers(0, 50), max_size=60))
def test_window_always_within_bounds(params, accesses):
    min_pages, max_pages = params
    ra = LinuxReadAhead(min_pages=min_pages, max_pages=max_pages)
    for vpn in accesses:
        size = ra.on_access(vpn)
        assert size == ra.window
        assert min_pages <= size <= max_pages


@given(params=WINDOW_PARAMS, start=st.integers(0, 1000), steps=st.integers(1, 20))
def test_sequential_run_doubles_until_cap(params, start, steps):
    min_pages, max_pages = params
    ra = LinuxReadAhead(min_pages=min_pages, max_pages=max_pages)
    expected = min_pages
    ra.on_access(start)
    assert ra.window == min_pages  # first access never grows the window
    for i in range(1, steps + 1):
        expected = min(expected * 2, max_pages)
        assert ra.on_access(start + i) == expected


@given(params=WINDOW_PARAMS, accesses=st.lists(st.integers(0, 50), min_size=1, max_size=30))
def test_any_seek_collapses_to_minimum(params, accesses):
    min_pages, max_pages = params
    ra = LinuxReadAhead(min_pages=min_pages, max_pages=max_pages)
    for vpn in accesses:
        ra.on_access(vpn)
    last = accesses[-1]
    assert ra.on_access(last + 2) == min_pages  # a 2-page jump is a seek
    # ...and the stream has to re-earn the deep window from the bottom.
    assert ra.on_access(last + 3) == min(min_pages * 2, max_pages)


@given(params=WINDOW_PARAMS, accesses=st.lists(st.integers(0, 50), max_size=40))
def test_deterministic_replay(params, accesses):
    min_pages, max_pages = params
    a = LinuxReadAhead(min_pages=min_pages, max_pages=max_pages)
    b = LinuxReadAhead(min_pages=min_pages, max_pages=max_pages)
    assert [a.on_access(v) for v in accesses] == [b.on_access(v) for v in accesses]
