"""A virtual machine as a workload: interleaved multi-process streams.

Paper section 7: "a tailored AMPoM for migrating virtual machines whose
memory references are consisted of access streams from multiple
processes".  A :class:`MultiProcessWorkload` hosts several inner workloads
in one address space (one region block per process) and interleaves their
reference streams in short scheduler slices, the way a VM's guest kernel
time-slices its processes.  The fine interleaving is exactly what defeats
a single lookback window — the motivation for
:class:`repro.core.vm_prefetcher.VmAmpomPrefetcher`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..mem.address_space import AddressSpace
from ..units import PAGE_SIZE
from .base import Syscall, TraceChunk, TraceEvent, Workload


class MultiProcessWorkload(Workload):
    """Round-robin interleave of several inner workloads' traces."""

    name = "multiprocess"

    def __init__(
        self,
        processes: Sequence[Workload],
        slice_refs: int = 16,
        page_size: int = PAGE_SIZE,
    ) -> None:
        if not processes:
            raise ConfigurationError("a VM needs at least one process")
        if slice_refs < 1:
            raise ConfigurationError(f"slice_refs must be >= 1: {slice_refs}")
        for w in processes:
            if w.page_size != page_size:
                raise ConfigurationError(
                    f"inner workload {w.name!r} uses page size {w.page_size}, "
                    f"the VM uses {page_size}"
                )
        super().__init__(sum(w.memory_bytes for w in processes), page_size)
        self.processes = list(processes)
        self.slice_refs = slice_refs
        self.creates_pages = any(w.creates_pages for w in processes)
        self._offsets: list[int] = []

    # ------------------------------------------------------------------
    def _allocate(self, space: AddressSpace) -> None:
        self._offsets = []
        for i, inner in enumerate(self.processes):
            inner_space = inner.setup()
            region = space.allocate_region(f"proc{i}", inner_space.total_pages)
            self._offsets.append(region.start_page)

    def process_boundaries(self) -> list[tuple[int, int]]:
        """``(start_vpn, end_vpn)`` of each guest process's block."""
        space = self._require_setup()
        out = []
        for i, start in enumerate(self._offsets):
            out.append((start, start + space.region(f"proc{i}").n_pages))
        return out

    def process_of(self, vpn: int) -> int:
        """Index of the guest process owning ``vpn`` (data regions)."""
        self._require_setup()
        idx = bisect_right(self._offsets, vpn) - 1
        return max(idx, 0)

    def premigration_pages(self) -> set[int] | None:
        space = self._require_setup()
        inner_sets = [w.premigration_pages() for w in self.processes]
        if all(s is None for s in inner_sets):
            return None
        pages: set[int] = set(
            range(0, space.region("proc0").start_page)  # VM code + stack
        )
        for inner, offset, inner_pages in zip(
            self.processes, self._offsets, inner_sets
        ):
            if inner_pages is None:
                inner_pages = set(range(inner.address_space.total_pages))
            pages.update(offset + vpn for vpn in inner_pages)
        return pages

    # ------------------------------------------------------------------
    def _slices(self, inner: Workload, offset: int) -> Iterator[TraceEvent]:
        """Yield an inner trace re-based into the VM's address space,
        split into scheduler slices of at most ``slice_refs`` references."""
        for event in inner.trace():
            if isinstance(event, Syscall):
                yield event
                continue
            pages = event.pages + offset
            compute = event.compute
            for lo in range(0, len(pages), self.slice_refs):
                yield TraceChunk(
                    pages=pages[lo : lo + self.slice_refs],
                    compute=compute[lo : lo + self.slice_refs],
                )

    def trace(self) -> Iterator[TraceEvent]:
        self._require_setup()
        streams = [
            self._slices(inner, offset)
            for inner, offset in zip(self.processes, self._offsets)
        ]
        live = list(range(len(streams)))
        while live:
            finished = []
            for i in live:
                try:
                    yield next(streams[i])
                except StopIteration:
                    finished.append(i)
            for i in finished:
                live.remove(i)

    def total_compute_estimate(self) -> float:
        return sum(w.total_compute_estimate() for w in self.processes)
