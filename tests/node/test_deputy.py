"""Unit tests for the origin-side deputy (remote paging server)."""

from __future__ import annotations

import pytest

from repro.config import HardwareSpec, NetworkSpec
from repro.errors import MemoryStateError
from repro.mem.page_table import HomePageTable
from repro.net.link import Direction
from repro.node.deputy import Deputy


def make(pages=range(10)):
    hw = HardwareSpec()
    reply = Direction(NetworkSpec())
    deputy = Deputy(HomePageTable(pages), reply, hw)
    return deputy, reply, hw


def test_demand_page_is_served_first():
    deputy, _, _ = make()
    arrivals = deputy.serve_pages(demand=[5], prefetch=[1, 2], request_arrival=0.0)
    assert arrivals[5] < arrivals[1] < arrivals[2]


def test_served_pages_leave_the_hpt():
    deputy, _, _ = make()
    deputy.serve_pages([1], [2], request_arrival=0.0)
    assert 1 not in deputy.hpt and 2 not in deputy.hpt
    assert deputy.pages_served == 2
    assert deputy.requests_served == 1


def test_serving_missing_page_fails():
    deputy, _, _ = make(pages=[1])
    with pytest.raises(MemoryStateError):
        deputy.serve_pages([99], [], request_arrival=0.0)


def test_duplicate_page_in_request_is_deduped():
    # A page listed both as demand and prefetch is served once (demand
    # wins) and the duplicate is counted, not an error.
    deputy, _, _ = make()
    arrivals = deputy.serve_pages([1], [1, 2], request_arrival=0.0)
    assert set(arrivals) == {1, 2}
    assert arrivals[1] < arrivals[2]
    assert deputy.pages_served == 2
    assert deputy.duplicate_page_requests == 1
    assert 1 not in deputy.hpt


def test_requests_queue_on_deputy_cpu():
    deputy, _, hw = make()
    a1 = deputy.serve_pages([1], [], request_arrival=0.0)
    a2 = deputy.serve_pages([2], [], request_arrival=0.0)
    # Second request starts after the first finished service.
    assert a2[2] > a1[1]
    assert deputy.busy_until > 0


def test_arrivals_pipelined_on_the_wire():
    deputy, reply, hw = make()
    arrivals = deputy.serve_pages([0], [1, 2, 3], request_arrival=0.0)
    times = [arrivals[p] for p in (0, 1, 2, 3)]
    gaps = [b - a for a, b in zip(times, times[1:])]
    wire = (hw.page_size + hw.remote_paging_overhead_bytes + reply.per_message_overhead_bytes) / reply.bandwidth_bps
    # Once the channel saturates, pages arrive one serialization apart.
    assert gaps[-1] == pytest.approx(wire, rel=0.01)


def test_syscall_service():
    deputy, _, hw = make()
    reply_at = deputy.serve_syscall(request_arrival=0.0, service_time=0.001)
    assert reply_at > 0.001
    assert deputy.syscalls_served == 1


def test_syscall_negative_service_time():
    deputy, _, _ = make()
    with pytest.raises(MemoryStateError):
        deputy.serve_syscall(0.0, -0.1)
