"""End-to-end integration invariants across the full stack."""

from __future__ import annotations

import pytest

from repro.cluster.runner import MigrationRun
from repro.migration.ampom import AmpomMigration
from repro.migration.ffa import FfaMigration
from repro.migration.noprefetch import NoPrefetchMigration
from repro.migration.openmosix import OpenMosixMigration
from repro.migration.precopy import PrecopyMigration
from repro.units import mib
from repro.workloads.hpcc import hpcc_workload
from repro.workloads.synthetic import SequentialWorkload, StridedWorkload

ALL_STRATEGIES = [
    OpenMosixMigration,
    NoPrefetchMigration,
    AmpomMigration,
    FfaMigration,
    PrecopyMigration,
]


@pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
def test_every_strategy_completes_and_accounts_time(strategy_cls):
    w = SequentialWorkload(mib(1), sweeps=2)
    result = MigrationRun(w, strategy_cls()).execute()
    assert result.run_time > 0
    assert result.budget.total == pytest.approx(
        result.freeze_time + result.run_time, rel=1e-9
    )
    # Compute time is invariant across mechanisms (same trace, same CPU).
    assert result.budget.compute == pytest.approx(w.total_compute_estimate(), rel=1e-9)


@pytest.mark.parametrize("strategy_cls", [NoPrefetchMigration, AmpomMigration])
def test_page_conservation(strategy_cls):
    """Every remote page crosses the wire at most once, and all pages the
    trace touches end up local."""
    w = SequentialWorkload(mib(2), sweeps=1)
    run = MigrationRun(w, strategy_cls())
    result = run.execute()
    outcome = run.outcome
    c = result.counters
    total_pages = w.address_space.total_pages
    fetched = c.pages_demand_fetched + c.pages_prefetched
    assert fetched <= total_pages - outcome.pages_shipped
    # Data region fully mapped at the end.
    data = w.address_space.region("data")
    assert all(
        vpn in outcome.residency.mapped
        for vpn in range(data.start_page, data.end_page)
    )
    # HPT holds exactly the never-transferred pages.
    assert len(outcome.hpt) == total_pages - outcome.pages_shipped - fetched


def test_hpcc_kernels_run_under_every_scheme():
    for kernel in ("DGEMM", "STREAM", "RandomAccess", "FFT"):
        for strategy_cls in (OpenMosixMigration, NoPrefetchMigration, AmpomMigration):
            w = hpcc_workload(kernel, 65, scale=1 / 32)
            result = MigrationRun(w, strategy_cls()).execute()
            assert result.total_time > 0


def test_multi_stream_workload_multi_pivot_prefetch():
    """Interleaved streams exercise the multi-pivot quota path."""
    w = StridedWorkload(mib(2), streams=3)
    run = MigrationRun(w, AmpomMigration())
    result = run.execute()
    assert result.counters.pages_prefetched > 0
    nopf = MigrationRun(StridedWorkload(mib(2), streams=3), NoPrefetchMigration()).execute()
    assert result.counters.page_fault_requests < nopf.counters.page_fault_requests / 2


def test_ffa_flush_dependency_slows_early_faults():
    """FFA pays for file-server flushing: a migrant that immediately sweeps
    its memory waits on pages that have not been flushed yet."""
    ffa = MigrationRun(SequentialWorkload(mib(2)), FfaMigration()).execute()
    nopf = MigrationRun(SequentialWorkload(mib(2)), NoPrefetchMigration()).execute()
    assert ffa.freeze_time == pytest.approx(nopf.freeze_time, rel=0.05)
    # Demand-paging dominated, like NoPrefetch (stalls on every first touch).
    assert ffa.budget.stall > 0.5 * nopf.budget.stall
    assert ffa.total_time == pytest.approx(nopf.total_time, rel=0.15)


def test_infod_measured_rtt_tracks_shaping():
    """The monitoring daemon's RTT estimate reflects a reshaped link."""
    run = MigrationRun(
        SequentialWorkload(mib(1)),
        AmpomMigration(),
        shaped_bandwidth_bps=0.75e6,
        shaped_latency_s=0.002,
    )
    run.execute()
    assert run.infod is not None
    # 2 x 2 ms shaped latency + daemon delay at minimum.
    assert run.infod.conditions().rtt_s >= 0.004


def test_deterministic_across_runs_full_stack():
    def once():
        w = hpcc_workload("RandomAccess", 65, scale=1 / 32)
        return MigrationRun(w, AmpomMigration()).execute()

    a, b = once(), once()
    assert a.total_time == b.total_time
    assert a.counters.as_dict() == b.counters.as_dict()
