"""Figure 6: total execution time of HPCC under the three schemes.

Paper shapes: AMPoM tracks openMosix within a few percent (RandomAccess is
the worst case); NoPrefetch lags by 20-51% on the largest runs.
"""

from __future__ import annotations

from repro.experiments import figures

from ._common import emit, series_table


def bench_fig6_execution_time(benchmark):
    matrix = benchmark.pedantic(
        lambda: figures.run_matrix(scale=figures.DEFAULT_SCALE), rounds=1, iterations=1
    )
    f6 = figures.figure6(matrix)
    for kernel, schemes in f6.items():
        emit(f"fig6_exec_{kernel}", series_table(["MB"], schemes))

    for kernel, schemes in f6.items():
        ampom = dict(schemes["AMPoM"])
        openmosix = dict(schemes["openMosix"])
        noprefetch = dict(schemes["NoPrefetch"])
        largest = max(ampom)
        # NoPrefetch clearly lags on the largest run (paper: +20-51%).
        assert noprefetch[largest] > openmosix[largest] * 1.12, kernel
        # AMPoM stays within ~10% of openMosix at reporting scale.
        ratio = ampom[largest] / openmosix[largest]
        assert 0.85 < ratio < 1.12, (kernel, ratio)
        # AMPoM beats NoPrefetch everywhere.
        assert all(ampom[mb] < noprefetch[mb] for mb in ampom), kernel
