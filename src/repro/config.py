"""Configuration dataclasses for hardware, network, and the AMPoM algorithm.

The defaults reproduce the paper's testbed: the HKU Gideon 300 cluster
(Pentium 4 2 GHz nodes, 512 MB RAM, Fast Ethernet) running openMosix
2.4.26-1 (paper section 5.1), with the algorithm parameters of section 4
(lookback window length 20, dmax = 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigurationError
from .units import MPT_ENTRY_BYTES, PAGE_SIZE, mbit_per_s, ms, us


@dataclass(frozen=True)
class HardwareSpec:
    """Per-node hardware model (Gideon 300 defaults).

    ``cpu_hz`` is only used for reporting; per-workload compute costs are
    expressed directly in seconds-per-page-reference (see
    :mod:`repro.experiments.calibration`), because that is the quantity the
    simulation consumes.
    """

    cpu_hz: float = 2.0e9
    ram_bytes: int = 512 * 1024 * 1024
    page_size: int = PAGE_SIZE
    mpt_entry_bytes: int = MPT_ENTRY_BYTES
    #: CPU time to copy one arrived (buffered) page into the address space.
    page_copy_time: float = us(6.0)
    #: CPU time charged per AMPoM dependent-zone analysis (figure 11 model).
    analysis_time_per_fault: float = us(2.0)
    #: Kernel time to process one MPT entry while installing the migrated
    #: page table (calibrates AMPoM's linear freeze-time growth, fig. 5).
    mpt_install_time_per_entry: float = us(3.0)
    #: Fixed per-migration cost: capturing/restoring registers, the process
    #: control block, socket setup etc.
    migration_setup_time: float = ms(45.0)
    #: Origin-node ("deputy") service time per remote paging request.
    deputy_request_time: float = us(25.0)
    #: Origin-node service time per page looked up and queued for sending.
    deputy_page_time: float = us(8.0)
    #: Extra wire-time-equivalent cost per remotely paged page (interrupts,
    #: syscalls, and protocol framing on both ends).  Per-page remote
    #: paging is less efficient than openMosix's bulk migration stream,
    #: which is why AMPoM's total execution time ends up slightly *above*
    #: openMosix's in figure 6 even though its transfers overlap compute.
    remote_paging_overhead_bytes: int = 640

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigurationError(f"page_size must be a positive power of two: {self.page_size}")
        if self.ram_bytes <= 0:
            raise ConfigurationError("ram_bytes must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point link model parameters.

    Defaults model Fast Ethernet as deployed in the Gideon 300 cluster:
    100 Mb/s with ~0.15 ms one-way latency.  The broadband scenario of
    figure 9 is :func:`NetworkSpec.broadband` (6 Mb/s, 2 ms), produced in
    the paper with ``tc``/``iptables`` traffic shaping.
    """

    bandwidth_bps: float = mbit_per_s(100.0)
    latency_s: float = ms(0.15)
    #: Fixed per-message wire overhead (headers, syscall, interrupt).
    per_message_overhead_bytes: int = 66
    #: Per-page protocol overhead on top of the raw page payload.
    per_page_overhead_bytes: int = 48
    #: How far back (seconds) the per-transfer log must stay exact for
    #: byte-counter queries; older entries are compacted away so the log
    #: stays bounded on long runs (the monitor samples every ~1 s).
    counter_horizon_s: float = 16.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")
        if self.latency_s < 0:
            raise ConfigurationError("latency_s must be non-negative")
        if self.counter_horizon_s < 0:
            raise ConfigurationError("counter_horizon_s must be non-negative")

    @classmethod
    def fast_ethernet(cls) -> "NetworkSpec":
        """The cluster interconnect used in sections 5.2-5.4 and 5.6-5.7."""
        return cls()

    @classmethod
    def broadband(cls) -> "NetworkSpec":
        """The simulated broadband network of section 5.5 (6 Mb/s, 2 ms)."""
        return cls(bandwidth_bps=mbit_per_s(6.0), latency_s=ms(2.0))


@dataclass(frozen=True)
class AMPoMConfig:
    """Parameters of the AMPoM prefetching algorithm (paper sections 3-4)."""

    #: Lookback window length ``l`` (section 4: 20).
    lookback_length: int = 20
    #: Maximum stride analysed, ``dmax`` (section 4: 4).
    dmax: int = 4
    #: Hard cap on the dependent-zone size, pages.  The paper does not state
    #: a cap but figure 8 never exceeds ~160 pages/fault; the cap prevents a
    #: transient bandwidth-estimate spike from requesting an unbounded zone.
    max_zone_pages: int = 256
    #: Floor on the dependent-zone size, pages.  Section 5.3 observes that
    #: AMPoM retains "a 'baseline' of prefetching aggressiveness even when
    #: the access pattern is not clear", resembling a fixed-size read-ahead;
    #: the kernel it is built into already reads 8 pages around every
    #: swapped-in fault (Linux 2.4 ``page_cluster = 3``), and openMosix's
    #: remote paging takes that path.  The floor reproduces figure 7/8's
    #: RandomAccess behaviour (85% of fault requests still prevented).
    min_zone_pages: int = 8
    #: Floor on the estimated available bandwidth, as a fraction of link
    #: capacity, so the td estimate stays finite on a saturated link.
    min_bandwidth_fraction: float = 0.05
    #: Fallback paging interval (seconds) used for 1/r before the window has
    #: two distinct timestamps.
    initial_paging_interval: float = ms(1.0)

    def __post_init__(self) -> None:
        if self.lookback_length < 2:
            raise ConfigurationError("lookback_length must be >= 2")
        if not (1 <= self.dmax < self.lookback_length):
            raise ConfigurationError("dmax must satisfy 1 <= dmax < lookback_length")
        if self.max_zone_pages < 1:
            raise ConfigurationError("max_zone_pages must be >= 1")
        if not (0 <= self.min_zone_pages <= self.max_zone_pages):
            raise ConfigurationError("need 0 <= min_zone_pages <= max_zone_pages")
        if not (0.0 < self.min_bandwidth_fraction <= 1.0):
            raise ConfigurationError("min_bandwidth_fraction must be in (0, 1]")


@dataclass(frozen=True)
class InfoDConfig:
    """Configuration of the resource discovery and monitoring daemon."""

    #: Interval between load-update/RTT probes (openMosix gossips ~1/s).
    probe_interval: float = 1.0
    #: Size of the load-update datagram whose acknowledgement measures RTT.
    probe_size_bytes: int = 128
    #: Exponential smoothing factor for RTT / bandwidth estimates.
    smoothing: float = 0.5
    #: Cap on the queuing delay a probe can observe per direction, modelling
    #: the finite switch/NIC buffer a real ping traverses (seconds).
    queue_delay_cap: float = 0.064
    #: Scheduling latency of the remote user-space daemon that acknowledges
    #: the load-update probe.  On the paper's platform (Linux 2.4, HZ=100)
    #: a sleeping daemon wakes on a ~10 ms scheduler tick, so the measured
    #: RTT — and hence AMPoM's prefetch horizon ``t`` — is dominated by it.
    #: This is what makes the paper's dependent zones tens of pages deep
    #: (figure 8) rather than a bare wire round trip.
    daemon_delay: float = 0.010


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault-injection model for the paging path.

    All randomness is drawn from per-channel streams derived from the
    experiment seed (:func:`repro.sim.rng.child_rng`), so the same seed
    always produces the same drop/duplicate/delay schedule.  The default
    spec injects nothing and leaves every simulation bit-identical to the
    fault-free code path.

    Windows are absolute simulated times ``(start, end)``; fault injection
    only begins once the migrant resumes (the freeze-time bulk transfer
    runs over TCP in the modelled systems and is out of scope).
    """

    #: Probability that a message is lost downstream (it still occupies
    #: the sender's wire time, like a frame dropped by a switch).
    loss_rate: float = 0.0
    #: Probability that a delivered message is duplicated on the wire.
    duplicate_rate: float = 0.0
    #: Probability that a delivered message is delayed by ``delay_s``.
    delay_rate: float = 0.0
    #: Extra one-way delay applied to delayed messages (seconds).
    delay_s: float = 0.0
    #: Scheduled link outages; messages submitted inside a window vanish
    #: without occupying the wire (the link is physically down).
    link_down_windows: tuple[tuple[float, float], ...] = ()
    #: Scheduled deputy crash windows; paging/syscall requests arriving
    #: inside a window are silently ignored (state survives the restart).
    deputy_crash_windows: tuple[tuple[float, float], ...] = ()
    #: How many recently released pages the deputy keeps re-sendable so a
    #: retransmitted request does not hit "origin no longer stores it".
    replay_cache_pages: int = 4096

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1]: {rate}")
        if self.delay_s < 0:
            raise ConfigurationError(f"delay_s must be non-negative: {self.delay_s}")
        if self.replay_cache_pages < 0:
            raise ConfigurationError("replay_cache_pages must be non-negative")
        for label in ("link_down_windows", "deputy_crash_windows"):
            windows = tuple(tuple(w) for w in getattr(self, label))
            object.__setattr__(self, label, windows)
            for window in windows:
                if len(window) != 2 or not window[0] < window[1]:
                    raise ConfigurationError(
                        f"{label} entries must be (start, end) with start < end: {window}"
                    )
            for (_, a_end), (b_start, _) in zip(windows, windows[1:]):
                if b_start < a_end:
                    raise ConfigurationError(f"{label} must be sorted and non-overlapping")

    @property
    def active(self) -> bool:
        """True if this spec can ever perturb a message."""
        return bool(
            self.loss_rate > 0.0
            or self.duplicate_rate > 0.0
            or (self.delay_rate > 0.0 and self.delay_s > 0.0)
            or self.link_down_windows
            or self.deputy_crash_windows
        )


@dataclass(frozen=True)
class NodeFaultSpec:
    """Whole-node crash/restart schedule (the node-failure lifecycle).

    Unlike :class:`FaultSpec.deputy_crash_windows` — a survivable deputy
    *pause* whose state outlives the restart — a node crash is fatal to
    everything the node hosted: its deputy processes are gone for good
    (openMosix keeps no deputy state on disk), its infod stops answering
    probes, it stops gossiping, and messages addressed to it vanish.  The
    restart end of a window only brings the *node* back (fresh, empty),
    which is why a home-node crash kills the migrant and a transit-deputy
    crash needs chain repair even after the node returns.

    Crashes come from two sources, merged per node:

    * ``crash_windows`` — explicit ``(node, start, end)`` triples in
      absolute simulated seconds;
    * a seeded schedule — when ``crash_rate_hz > 0``, each eligible node
      draws crash arrivals (exponential inter-arrival, mean
      ``1/crash_rate_hz``) with exponential downtimes of mean
      ``mean_downtime_s``, over ``[0, horizon_s)``.  Same seed, same
      schedule (see :class:`repro.faults.plan.NodeFaultPlan`).

    Topology-level validation (unknown nodes, the file server, window
    overlap) happens when a :class:`repro.faults.plan.NodeFaultPlan` is
    built against a concrete node set.
    """

    #: Explicit crash windows: ``(node, start_s, end_s)`` triples.
    crash_windows: tuple[tuple[str, float, float], ...] = ()
    #: Seeded crash arrival rate per eligible node (0 = explicit only).
    crash_rate_hz: float = 0.0
    #: Mean downtime of a seeded crash window (exponential).
    mean_downtime_s: float = 0.0
    #: Seeded crashes are drawn over ``[0, horizon_s)``.
    horizon_s: float = 0.0
    #: Nodes eligible for seeded crashes (empty = every non-file-server
    #: node of the topology the plan is built against).
    nodes: tuple[str, ...] = ()
    #: Gossip-view age beyond which a peer marks a node suspected.
    suspect_staleness_s: float = 3.0
    #: Consecutive unanswered infod probes before the home is suspected.
    probe_suspect_after: int = 2

    def __post_init__(self) -> None:
        windows = tuple((str(n), float(a), float(b)) for n, a, b in self.crash_windows)
        object.__setattr__(self, "crash_windows", windows)
        for node, start, end in windows:
            if not node:
                raise ConfigurationError("crash_windows node name must be non-empty")
            if not start < end:
                raise ConfigurationError(
                    f"crash_windows entries must satisfy start < end: ({node!r}, {start}, {end})"
                )
            if start < 0:
                raise ConfigurationError(
                    f"crash_windows start must be non-negative: ({node!r}, {start}, {end})"
                )
        object.__setattr__(self, "nodes", tuple(str(n) for n in self.nodes))
        if self.crash_rate_hz < 0:
            raise ConfigurationError(f"crash_rate_hz must be non-negative: {self.crash_rate_hz}")
        if self.mean_downtime_s < 0:
            raise ConfigurationError(
                f"mean_downtime_s must be non-negative: {self.mean_downtime_s}"
            )
        if self.horizon_s < 0:
            raise ConfigurationError(f"horizon_s must be non-negative: {self.horizon_s}")
        if self.crash_rate_hz > 0.0 and (self.mean_downtime_s <= 0.0 or self.horizon_s <= 0.0):
            raise ConfigurationError(
                "seeded node crashes need crash_rate_hz, mean_downtime_s and "
                "horizon_s all positive"
            )
        if self.suspect_staleness_s <= 0:
            raise ConfigurationError("suspect_staleness_s must be positive")
        if self.probe_suspect_after < 1:
            raise ConfigurationError("probe_suspect_after must be >= 1")

    @property
    def active(self) -> bool:
        """True if this spec can ever crash a node."""
        return bool(self.crash_windows) or self.crash_rate_hz > 0.0


@dataclass(frozen=True)
class RetrySpec:
    """Timeout/retransmission policy of the reliable paging protocol.

    A demand request whose reply is lost is retransmitted after
    ``timeout_s * backoff**attempt`` seconds (plus deterministic jitter up
    to ``jitter_frac`` of that), at most ``max_attempts`` times before the
    executor gives up with a :class:`repro.errors.MigrationError`.
    """

    #: Base retransmission timeout (seconds) for the first attempt.
    timeout_s: float = 0.05
    #: Exponential backoff multiplier per retransmission.
    backoff: float = 2.0
    #: Maximum number of retransmissions before the run fails.
    max_attempts: int = 6
    #: Jitter fraction added on top of each timeout (decorrelates retries).
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be positive: {self.timeout_s}")
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1: {self.backoff}")
        if self.max_attempts < 0:
            raise ConfigurationError("max_attempts must be non-negative")
        if not (0.0 <= self.jitter_frac < 1.0):
            raise ConfigurationError(f"jitter_frac must be in [0, 1): {self.jitter_frac}")

    def timeout_for(self, attempt: int, u: float = 0.0) -> float:
        """The timeout armed for retransmission ``attempt`` (0-based).

        ``u`` is a uniform [0, 1) draw from the experiment's retry stream;
        passing the same ``u`` always yields the same timeout.
        """
        return self.timeout_s * self.backoff**attempt * (1.0 + self.jitter_frac * u)


@dataclass(frozen=True)
class CheckSpec:
    """Configuration of the :mod:`repro.check` runtime correctness tooling.

    Checks are pure observers: they never alter simulation state or
    timing, so a run with checks enabled produces bit-identical results to
    the same run with checks off — it merely raises
    :class:`repro.errors.InvariantViolation` if the model misbehaves.
    The default (disabled) spec adds zero work to the hot path.
    """

    #: Master switch for the runtime invariant checker.
    enabled: bool = False
    #: Also cross-check every dependent-zone analysis against the
    #: brute-force AMPoM oracle (eq. 1-3 + pivot selection).
    oracle: bool = True
    #: Run the full set-theoretic residency audit every this many checked
    #: events (cheap O(1) size/counter checks run on every event; the deep
    #: audit is O(pages)).  A final deep audit always runs at end of run.
    deep_audit_interval: int = 64
    #: How many recent events the checker retains for violation reports.
    trace_depth: int = 32

    def __post_init__(self) -> None:
        if self.deep_audit_interval < 1:
            raise ConfigurationError("deep_audit_interval must be >= 1")
        if self.trace_depth < 0:
            raise ConfigurationError("trace_depth must be non-negative")

    @classmethod
    def from_env(cls) -> "CheckSpec":
        """Default spec honouring the ``REPRO_CHECKS`` environment variable.

        ``REPRO_CHECKS=1`` turns the invariant checker and oracle on for
        every :class:`SimulationConfig` built with default arguments —
        how the CI ``checks-on`` job runs the whole test suite under the
        checker without touching any call site.
        """
        import os

        if os.environ.get("REPRO_CHECKS", "") not in ("", "0"):
            return cls(enabled=True)
        return cls()


@dataclass(frozen=True)
class BatchSpec:
    """Configuration of the batched multi-migrant analysis engine.

    When enabled, AMPoM migrants run their dependent-zone analyses
    through the shared-array :class:`repro.core.batch.BatchedWindowEngine`
    instead of per-migrant :class:`repro.core.incremental.
    IncrementalWindow` state.  The batched path is bit-identical to the
    scalar one (the golden matrix and the differential oracle gate this),
    so the flag defaults off and flips purely the implementation.
    """

    #: Route AMPoM window analysis through the shared batched engine.
    enabled: bool = False

    @classmethod
    def from_env(cls) -> "BatchSpec":
        """Default spec honouring the ``REPRO_BATCH`` environment variable.

        ``REPRO_BATCH=1`` routes every default-config run through the
        batched engine — how the CI ``bench-scale`` job audits the batched
        path against the oracle and the golden matrix without touching
        call sites.
        """
        import os

        if os.environ.get("REPRO_BATCH", "") not in ("", "0"):
            return cls(enabled=True)
        return cls()


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level bundle passed to :class:`repro.cluster.runner.MigrationRun`."""

    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    ampom: AMPoMConfig = field(default_factory=AMPoMConfig)
    infod: InfoDConfig = field(default_factory=InfoDConfig)
    faults: FaultSpec = field(default_factory=FaultSpec)
    node_faults: NodeFaultSpec = field(default_factory=NodeFaultSpec)
    retry: RetrySpec = field(default_factory=RetrySpec)
    checks: CheckSpec = field(default_factory=CheckSpec.from_env)
    batch: BatchSpec = field(default_factory=BatchSpec.from_env)
    #: Run-wide prefetch-policy override: a :data:`repro.core.policy.
    #: POLICIES` name every paging migration resolves unless its migrant
    #: spec or strategy names one itself (``None`` = scheme defaults).
    prefetch_policy: str | None = None
    seed: int = 0

    def with_network(self, network: NetworkSpec) -> "SimulationConfig":
        """Return a copy with a different interconnect (e.g. broadband)."""
        return replace(self, network=network)

    def with_(self, **kwargs: Any) -> "SimulationConfig":
        """Return a copy with arbitrary fields replaced."""
        return replace(self, **kwargs)
