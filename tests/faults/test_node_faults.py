"""NodeFaultPlan: validation, schedule determinism, and stats properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NodeFaultSpec
from repro.errors import ConfigurationError, FaultInjectionError
from repro.faults import NodeFaultPlan, NodeFaultStats, validate_windows

NODES = ("home", "dest", "fs")


def make_plan(windows=(), protected=("fs",), seed=0, **spec_kwargs):
    spec = NodeFaultSpec(crash_windows=tuple(windows), **spec_kwargs)
    return NodeFaultPlan(spec, seed=seed, nodes=NODES, protected=protected)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_validate_windows_accepts_sorted_disjoint():
    assert validate_windows([(0.0, 1.0), (1.0, 2.0), (5.0, 6.0)]) == (
        (0.0, 1.0),
        (1.0, 2.0),
        (5.0, 6.0),
    )


def test_validate_windows_rejects_empty_or_inverted():
    with pytest.raises(ConfigurationError, match="empty or inverted"):
        validate_windows([(1.0, 1.0)])
    with pytest.raises(ConfigurationError, match="empty or inverted"):
        validate_windows([(2.0, 1.0)])


def test_validate_windows_rejects_unsorted():
    with pytest.raises(ConfigurationError, match="unsorted"):
        validate_windows([(5.0, 6.0), (0.0, 1.0)])


def test_validate_windows_rejects_overlap():
    with pytest.raises(ConfigurationError, match="overlap"):
        validate_windows([(0.0, 2.0), (1.0, 3.0)])


def test_validate_windows_rejects_non_pairs():
    with pytest.raises(ConfigurationError, match="pairs"):
        validate_windows([(0.0, 1.0, 2.0)])


def test_plan_rejects_unknown_node_window():
    with pytest.raises(ConfigurationError, match="unknown"):
        make_plan([("nope", 0.0, 1.0)])


def test_plan_rejects_protected_node_window():
    with pytest.raises(ConfigurationError, match="protected"):
        make_plan([("fs", 0.0, 1.0)])


def test_plan_rejects_unknown_eligible_node():
    with pytest.raises(ConfigurationError, match="unknown"):
        make_plan(nodes=("nope",), crash_rate_hz=1.0, mean_downtime_s=0.2, horizon_s=1.0)


def test_plan_rejects_protected_eligible_node():
    with pytest.raises(ConfigurationError, match="protected"):
        make_plan(nodes=("fs",), crash_rate_hz=1.0, mean_downtime_s=0.2, horizon_s=1.0)


def test_plan_rejects_overlapping_windows_per_node():
    with pytest.raises(ConfigurationError, match="overlap"):
        make_plan([("dest", 0.0, 2.0), ("dest", 1.0, 3.0)])


# ----------------------------------------------------------------------
# schedule semantics
# ----------------------------------------------------------------------


def test_down_is_half_open():
    plan = make_plan([("dest", 1.0, 2.0)])
    assert not plan.down("dest", 0.999)
    assert plan.down("dest", 1.0)
    assert plan.down("dest", 1.999)
    assert not plan.down("dest", 2.0)
    assert not plan.down("home", 1.5)


def test_first_crash_in_and_crashed_in():
    plan = make_plan([("dest", 1.0, 2.0), ("dest", 5.0, 6.0)])
    assert plan.first_crash_in("dest", 0.0, 10.0) == 1.0
    assert plan.first_crash_in("dest", 1.5, 10.0) == 5.0
    assert plan.first_crash_in("dest", 6.0, 10.0) is None
    assert plan.crashed_in("dest", 0.0, 1.5)
    # The interval is half-open: a crash exactly at t1 is not inside.
    assert not plan.crashed_in("dest", 0.0, 1.0)
    assert not plan.crashed_in("home", 0.0, 10.0)


def test_restart_time():
    plan = make_plan([("dest", 1.0, 2.0)])
    assert plan.restart_time("dest", 1.5) == 2.0
    with pytest.raises(FaultInjectionError):
        plan.restart_time("dest", 0.5)


def test_boundaries_sorted():
    plan = make_plan([("dest", 1.0, 2.0), ("home", 0.5, 0.8)])
    bounds = plan.boundaries()
    assert bounds == [
        (0.5, "home", True),
        (0.8, "home", False),
        (1.0, "dest", True),
        (2.0, "dest", False),
    ]


def test_inactive_plan_when_no_windows_materialize():
    # A spec that is "active" but whose horizon admits no draw yields an
    # inactive plan — the runtime then skips the machinery entirely.
    plan = make_plan(crash_rate_hz=0.001, mean_downtime_s=0.1, horizon_s=1e-9)
    assert not plan.active
    assert plan.faulty_nodes == ()


# ----------------------------------------------------------------------
# determinism and non-overlap properties
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=0.1, max_value=10.0),
    downtime=st.floats(min_value=0.01, max_value=2.0),
    horizon=st.floats(min_value=0.1, max_value=20.0),
)
@settings(max_examples=50, deadline=None)
def test_same_seed_same_schedule(seed, rate, downtime, horizon):
    kwargs = dict(crash_rate_hz=rate, mean_downtime_s=downtime, horizon_s=horizon)
    a = make_plan(seed=seed, **kwargs)
    b = make_plan(seed=seed, **kwargs)
    for node in NODES:
        assert a.windows_for(node) == b.windows_for(node)
    assert a.boundaries() == b.boundaries()


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=0.1, max_value=10.0),
    downtime=st.floats(min_value=0.01, max_value=2.0),
    horizon=st.floats(min_value=0.1, max_value=20.0),
)
@settings(max_examples=50, deadline=None)
def test_windows_never_overlap_and_start_inside_horizon(seed, rate, downtime, horizon):
    plan = make_plan(seed=seed, crash_rate_hz=rate, mean_downtime_s=downtime, horizon_s=horizon)
    for node in NODES:
        windows = plan.windows_for(node)
        for start, end in windows:
            assert start < end
            assert start < horizon
        for (_, a_end), (b_start, _) in zip(windows, windows[1:]):
            assert b_start > a_end  # disjoint AND sorted
    # The protected node never crashes under a seeded schedule.
    assert plan.windows_for("fs") == ()


@given(
    explicit=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),
            st.floats(min_value=0.01, max_value=2.0),
        ),
        min_size=0,
        max_size=5,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_explicit_and_seeded_windows_merge_disjoint(explicit, seed):
    """Union of explicit and seeded schedules stays sorted and disjoint."""
    windows = []
    t = 0.0
    for gap, length in explicit:
        start = t + gap
        windows.append(("dest", start, start + length))
        t = start + length + 1e-6
    plan = make_plan(
        windows, seed=seed, crash_rate_hz=2.0, mean_downtime_s=0.2, horizon_s=5.0
    )
    for node in NODES:
        merged = plan.windows_for(node)
        for start, end in merged:
            assert start < end
        for (_, a_end), (b_start, _) in zip(merged, merged[1:]):
            assert b_start > a_end


# ----------------------------------------------------------------------
# NodeFaultStats
# ----------------------------------------------------------------------


def test_stats_start_at_zero():
    stats = NodeFaultStats()
    assert all(v == 0 for v in stats.as_dict().values())


def test_record_detection_rejects_negative():
    with pytest.raises(ValueError):
        NodeFaultStats().record_detection(-1e-9)


def test_as_dict_surfaces_per_node_detection_latency():
    """`cluster run --json` embeds as_dict() verbatim, so the per-node
    detection latencies must ride it whenever a detection was recorded."""
    stats = NodeFaultStats()
    assert "detection_latency_by_node" not in stats.as_dict()
    stats.record_detection(0.2, node="home")
    stats.record_detection(0.4, node="home")
    stats.record_detection(0.3, node="n1")
    out = stats.as_dict()
    assert out["mean_detection_latency_s"] == pytest.approx(0.3)
    assert out["detection_latency_by_node"] == {
        "home": pytest.approx(0.3),
        "n1": pytest.approx(0.3),
    }
    assert out["detections_by_node"] == {"home": 2, "n1": 1}


@given(
    latencies=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=0, max_size=30
    )
)
@settings(max_examples=50, deadline=None)
def test_detection_counters_monotone(latencies):
    """Every counter only ever increases, and the mean divides exactly."""
    stats = NodeFaultStats()
    previous = stats.as_dict()
    for latency in latencies:
        stats.record_detection(latency)
        stats.suspicions += 1
        snapshot = stats.as_dict()
        for key in (
            "detections",
            "detection_latency_total_s",
            "suspicions",
        ):
            assert snapshot[key] >= previous[key]
        previous = snapshot
    assert stats.detections == len(latencies)
    if latencies:
        assert stats.mean_detection_latency_s == pytest.approx(
            sum(latencies) / len(latencies)
        )
    else:
        assert stats.mean_detection_latency_s == 0.0
