"""Unit tests for the time-budget decomposition."""

from __future__ import annotations

import pytest

from repro.metrics.timeline import TimeBudget


def test_total_sums_buckets():
    b = TimeBudget(freeze=1.0, compute=2.0, stall=3.0, analysis=0.5, copy=0.25, syscall=0.25)
    assert b.total == pytest.approx(7.0)


def test_add_accumulates():
    b = TimeBudget()
    b.add("compute", 1.5)
    b.add("compute", 0.5)
    assert b.compute == 2.0


def test_add_negative_rejected():
    with pytest.raises(ValueError):
        TimeBudget().add("stall", -1.0)


def test_add_unknown_bucket_fails():
    with pytest.raises(AttributeError):
        TimeBudget().add("nonsense", 1.0)


def test_analysis_overhead_fraction():
    b = TimeBudget(compute=99.0, analysis=1.0)
    assert b.analysis_overhead_fraction == pytest.approx(0.01)


def test_analysis_overhead_zero_total():
    assert TimeBudget().analysis_overhead_fraction == 0.0


def test_as_dict():
    d = TimeBudget(freeze=1.0).as_dict()
    assert d["freeze"] == 1.0
    assert set(d) == {"freeze", "compute", "stall", "analysis", "copy", "syscall"}
