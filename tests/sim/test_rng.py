"""Unit tests for seeded randomness helpers."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import child_rng, make_rng


def test_make_rng_reproducible():
    a = make_rng(7).integers(0, 1000, size=10)
    b = make_rng(7).integers(0, 1000, size=10)
    assert np.array_equal(a, b)


def test_child_rng_reproducible():
    a = child_rng(7, "stream").integers(0, 1000, size=10)
    b = child_rng(7, "stream").integers(0, 1000, size=10)
    assert np.array_equal(a, b)


def test_child_rng_label_independence():
    a = child_rng(7, "alpha").integers(0, 10**9, size=20)
    b = child_rng(7, "beta").integers(0, 10**9, size=20)
    assert not np.array_equal(a, b)


def test_child_rng_seed_matters():
    a = child_rng(1, "x").integers(0, 10**9, size=20)
    b = child_rng(2, "x").integers(0, 10**9, size=20)
    assert not np.array_equal(a, b)
