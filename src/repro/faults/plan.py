"""The seeded, deterministic fault schedule of one experiment.

A :class:`FaultPlan` owns every fault decision of a run:

* per-message random draws (drop / duplicate / delay), taken from an
  independent :func:`repro.sim.rng.child_rng` stream *per channel* so that
  adding traffic on one channel never perturbs another's schedule;
* the scheduled link-down windows and deputy crash windows of the
  :class:`repro.config.FaultSpec`.

Random injection is gated on :attr:`active_from` — the runner arms it at
the instant the migrant resumes, so freeze-time transfers (bulk TCP in the
modelled systems) are never perturbed.  Scheduled windows are absolute
simulated times supplied by the experimenter.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..config import FaultSpec
from ..errors import FaultInjectionError
from ..sim.rng import child_rng
from .log import FaultInjectionLog


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """The fate drawn for one message."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0


#: The fate of a message nothing happens to.
CLEAN = FaultDecision()


def _window_contains(windows: tuple[tuple[float, float], ...], t: float) -> bool:
    """True if ``t`` falls inside any half-open window ``[start, end)``."""
    if not windows:
        return False
    i = bisect_right(windows, (t, float("inf"))) - 1
    return i >= 0 and windows[i][0] <= t < windows[i][1]


class FaultPlan:
    """Deterministic fault decisions for one seeded experiment."""

    def __init__(
        self,
        spec: FaultSpec,
        seed: int,
        log: FaultInjectionLog | None = None,
        active_from: float = 0.0,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.log = log
        #: Simulated time before which random injection is suppressed.
        self.active_from = active_from
        self._rngs: dict[str, np.random.Generator] = {}

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True if this plan can ever perturb a message."""
        return self.spec.active

    def activate(self, time: float) -> None:
        """Begin random injection at ``time`` (the migrant's resume)."""
        self.active_from = time

    # ------------------------------------------------------------------
    def _rng_for(self, channel: str) -> np.random.Generator:
        try:
            return self._rngs[channel]
        except KeyError:
            rng = child_rng(self.seed, f"faults:{channel}")
            self._rngs[channel] = rng
            return rng

    def draw(self, channel: str, now: float) -> FaultDecision:
        """Draw the fate of one message submitted on ``channel`` at ``now``.

        Three uniforms are always consumed per message, so the stream
        position — and hence the schedule — depends only on the message
        count of the channel, not on which fault kinds are enabled.
        """
        if now < self.active_from:
            return CLEAN
        spec = self.spec
        u = self._rng_for(channel).random(3)
        return FaultDecision(
            drop=bool(u[0] < spec.loss_rate),
            duplicate=bool(u[1] < spec.duplicate_rate),
            extra_delay=spec.delay_s if u[2] < spec.delay_rate else 0.0,
        )

    # ------------------------------------------------------------------
    def link_down(self, t: float) -> bool:
        """True if the link is flapped down at simulated time ``t``."""
        return t >= self.active_from and _window_contains(self.spec.link_down_windows, t)

    def deputy_down(self, t: float) -> bool:
        """True if the deputy is crashed at simulated time ``t``."""
        return _window_contains(self.spec.deputy_crash_windows, t)

    def deputy_restart_time(self, t: float) -> float:
        """End of the crash window containing ``t``.

        Raises :class:`FaultInjectionError` if the deputy is up at ``t``.
        """
        for start, end in self.spec.deputy_crash_windows:
            if start <= t < end:
                return end
        raise FaultInjectionError(f"deputy is not crashed at t={t}")
