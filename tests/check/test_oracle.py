"""The differential oracle: references agree with production, and the
oracle actually fires on a disagreement."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.check.oracle import (
    DifferentialOracle,
    ref_outstanding_streams,
    ref_select_dependent_pages,
    ref_spatial_locality_score,
    ref_stride_counts,
    ref_zone_size,
)
from repro.core.locality import spatial_locality_score
from repro.core.stride import find_outstanding_streams, stride_counts
from repro.core.zone import dependent_zone_size, select_dependent_pages
from repro.errors import InvariantViolation

windows = st.lists(st.integers(min_value=0, max_value=60), max_size=25)
dmaxes = st.integers(min_value=1, max_value=6)


class TestReferencesMatchProduction:
    """The naive O(l²) transcriptions and the indexed implementations are
    two independent codings of the same paper text; they must agree on
    every input."""

    @given(windows, dmaxes)
    def test_stride_counts(self, pages, dmax):
        assert ref_stride_counts(pages, dmax) == stride_counts(pages, dmax)

    @given(windows, dmaxes)
    def test_spatial_locality_score(self, pages, dmax):
        assert ref_spatial_locality_score(pages, dmax) == pytest.approx(
            spatial_locality_score(pages, dmax)
        )

    @given(windows, dmaxes)
    def test_outstanding_streams(self, pages, dmax):
        production = [
            (s.stride, s.end_index, s.pivot)
            for s in find_outstanding_streams(pages, dmax)
        ]
        assert ref_outstanding_streams(pages, dmax) == production

    @given(windows, st.integers(min_value=0, max_value=40), dmaxes)
    def test_dependent_page_selection(self, pages, n, dmax):
        limit = 1000
        assert ref_select_dependent_pages(pages, n, dmax, limit) == (
            select_dependent_pages(pages, n, dmax, limit)
        )

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.001, max_value=1e6),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=64, max_value=4096),
    )
    def test_zone_size(self, s, r, t, c, lo, hi):
        assert ref_zone_size(s, r, t, c, hi, lo) == dependent_zone_size(
            s, r, t, cpu_ratio=c, max_pages=hi, min_pages=lo
        )

    def test_paper_worked_example(self):
        pages = [10, 99, 11, 34, 12, 85]
        assert ref_spatial_locality_score(pages, 4) == pytest.approx(0.25)
        assert ref_stride_counts(pages, 4) == {1: 0, 2: 3, 3: 0, 4: 0}


class TestVerifyAnalysis:
    def _analysis(self, **overrides):
        """One genuine analysis of a sequential window; overrides inject
        a disagreement for the oracle to catch."""
        pages = [5, 6, 7, 8]
        dmax = 4
        rtt, td, rate, cpu_ratio = 0.001, 0.0005, 100.0, 1.0
        horizon = rtt + td + 1.0 / rate
        score = spatial_locality_score(pages, dmax)
        n = dependent_zone_size(score, rate, horizon, cpu_ratio=cpu_ratio, max_pages=64)
        streams = find_outstanding_streams(pages, dmax)
        kwargs = dict(
            pages=pages,
            dmax=dmax,
            score=score,
            paging_rate=rate,
            horizon=horizon,
            rtt_s=rtt,
            page_transfer_time=td,
            cpu_ratio=cpu_ratio,
            zone_size=n,
            max_pages=64,
            min_pages=0,
            streams=streams,
            dependent=select_dependent_pages(pages, n, dmax, 1000, streams=streams),
            address_limit=1000,
        )
        kwargs.update(overrides)
        return kwargs

    def test_correct_analysis_verifies(self):
        oracle = DifferentialOracle()
        oracle.verify_analysis(**self._analysis())
        assert oracle.verified == 1

    def test_wrong_score_caught(self):
        oracle = DifferentialOracle()
        with pytest.raises(InvariantViolation) as exc:
            oracle.verify_analysis(**self._analysis(score=0.5))
        assert exc.value.invariant == "oracle:eq1-score"

    def test_wrong_horizon_caught(self):
        oracle = DifferentialOracle()
        with pytest.raises(InvariantViolation) as exc:
            oracle.verify_analysis(**self._analysis(horizon=42.0))
        assert exc.value.invariant in ("oracle:eq3-horizon", "oracle:eq2-zone-size")

    def test_wrong_zone_size_caught(self):
        oracle = DifferentialOracle()
        with pytest.raises(InvariantViolation) as exc:
            oracle.verify_analysis(**self._analysis(zone_size=63))
        assert exc.value.invariant == "oracle:eq2-zone-size"

    def test_wrong_streams_caught(self):
        oracle = DifferentialOracle()
        with pytest.raises(InvariantViolation) as exc:
            oracle.verify_analysis(**self._analysis(streams=[]))
        assert exc.value.invariant == "oracle:outstanding-streams"

    def test_wrong_selection_caught(self):
        oracle = DifferentialOracle()
        with pytest.raises(InvariantViolation) as exc:
            oracle.verify_analysis(**self._analysis(dependent=[999]))
        assert exc.value.invariant == "oracle:dependent-zone-selection"

    def test_failed_analysis_not_counted(self):
        oracle = DifferentialOracle()
        with pytest.raises(InvariantViolation):
            oracle.verify_analysis(**self._analysis(score=0.5))
        assert oracle.verified == 0


class TestOracleRunsInSimulation:
    def test_oracle_attached_and_exercised(self):
        from repro.cluster.runner import MigrationRun
        from repro.config import CheckSpec, SimulationConfig
        from repro.migration.ampom import AmpomMigration
        from repro.units import mib
        from repro.workloads.synthetic import SequentialWorkload

        run = MigrationRun(
            SequentialWorkload(mib(1), sweeps=1),
            AmpomMigration(),
            config=SimulationConfig().with_(checks=CheckSpec(enabled=True)),
        )
        run.execute()
        oracle = run.outcome.policy.check_oracle
        assert oracle is not None
        assert oracle.verified > 0

    def test_oracle_can_be_disabled_separately(self):
        from repro.cluster.runner import MigrationRun
        from repro.config import CheckSpec, SimulationConfig
        from repro.migration.ampom import AmpomMigration
        from repro.units import mib
        from repro.workloads.synthetic import SequentialWorkload

        run = MigrationRun(
            SequentialWorkload(mib(1), sweeps=1),
            AmpomMigration(),
            config=SimulationConfig().with_(checks=CheckSpec(enabled=True, oracle=False)),
        )
        run.execute()
        assert run.outcome.policy.check_oracle is None
        assert run.checker.deep_audits >= 1
