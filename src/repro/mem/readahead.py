"""Linux-style sequential read-ahead, used as a baseline prefetch policy.

Section 5.3 notes that AMPoM's fallback (prefetching the ``N`` pages after
the last reference when no outstanding stream exists) "resembles the
characteristics of a fixed-size read-ahead policy (e.g., in Linux's buffer
cache)".  This module provides that policy as an explicit baseline for the
ablation benchmarks: a window that doubles on sequential hits (4 -> 8 ->
... -> max) and collapses on a seek, like the 2.4-era Linux read-ahead.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import MemoryStateError


def sequential_successors(vpn: int, count: int, limit: int) -> Iterator[int]:
    """Yield up to ``count`` pages after ``vpn``, bounded by vpn ``limit``
    (one past the last valid page)."""
    if count < 0:
        raise MemoryStateError(f"count must be non-negative: {count}")
    stop = min(vpn + 1 + count, limit)
    yield from range(vpn + 1, stop)


class LinuxReadAhead:
    """Adaptive sequential read-ahead window (Linux buffer-cache style).

    ``on_access(vpn)`` returns the number of pages ahead of ``vpn`` worth
    prefetching: the window doubles while accesses are sequential and
    resets to the minimum after a seek.
    """

    def __init__(self, min_pages: int = 4, max_pages: int = 32) -> None:
        if not (1 <= min_pages <= max_pages):
            raise MemoryStateError(
                f"need 1 <= min_pages <= max_pages, got {min_pages}, {max_pages}"
            )
        self.min_pages = min_pages
        self.max_pages = max_pages
        self._window = min_pages
        self._last_vpn: int | None = None

    @property
    def window(self) -> int:
        return self._window

    def on_access(self, vpn: int) -> int:
        """Update the window with an access and return its new size."""
        if self._last_vpn is not None and vpn == self._last_vpn + 1:
            self._window = min(self._window * 2, self.max_pages)
        elif self._last_vpn is not None and vpn != self._last_vpn:
            self._window = self.min_pages
        self._last_vpn = vpn
        return self._window
