"""ScenarioRuntime: executes a declarative :class:`ScenarioSpec`.

One runtime owns the simulator, the cluster (nodes + full-mesh network
with per-link overrides), the shared fault plan, and every migrant
process.  Each migrant walks its :class:`MigrantSpec.path`:

* the first hop is a normal migration (``strategy.perform``);
* every further hop preempts the executor between trace events, quiesces
  the in-flight pages, and calls ``strategy.rehop`` — AMPoM and
  NoPrefetch leave a *transit deputy* holding the pages left behind
  (paper section 3.2), openMosix ships everything, FFA re-flushes to the
  file server.  The home deputy (system calls, home-resident pages)
  stays on ``path[0]`` for the whole journey and its reply channel is
  rebound at each hop — the home-dependency forwarding of section 3.2.

The legacy drivers :class:`repro.cluster.runner.MigrationRun` and
:class:`repro.cluster.multi.MultiMigrationRun` are thin wrappers over
this class; single-migrant two-node scenarios reproduce their event
sequence exactly (same events, same floats).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, MigrationError, ProcessLostError
from ..faults import (
    FaultEventKind,
    FaultInjectionLog,
    FaultPlan,
    NodeFaultPlan,
    NodeFaultStats,
    install_lossy_link,
)
from ..migration.base import MigrationContext, MigrationOutcome, MigrationStrategy
from ..migration.executor import ExecutionResult, MigrantExecutor
from ..migration.ffa import FfaMigration
from ..net.shaper import TrafficShaper
from ..node.infod import InfoDaemon
from ..obs.spans import MIGRANT_TRACK
from ..sim import Simulator, Timeout
from ..sim.rng import child_rng
from .cluster import Cluster
from .loadgen import BackgroundLoad
from .topology import FILE_SERVER, MigrantSpec, ScenarioSpec, resolve_strategy

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability


class ScenarioRuntime:
    """Builds and executes one :class:`ScenarioSpec`."""

    def __init__(
        self,
        spec: ScenarioSpec,
        obs: "Observability | None" = None,
        *,
        global_ids: "tuple[int, ...] | None" = None,
        global_count: int | None = None,
    ) -> None:
        self.spec = spec
        self.config = spec.resolved_config()
        #: Optional repro.obs bundle; ``None`` (or an all-``None`` bundle)
        #: keeps every hook detached and the simulator's no-observer fast
        #: path intact.
        self.obs = obs if obs is not None and obs.active else None
        # Sharded execution (repro.cluster.parallel) runs a component of a
        # larger spec in this runtime: global ids keep the per-migrant RNG
        # streams, process names and single-migrant special cases exactly
        # as they are in the full sequential run.
        if global_ids is not None and len(global_ids) != len(spec.migrants):
            raise ConfigurationError(
                "global_ids must name every migrant of the spec"
            )
        self._global_ids = tuple(global_ids) if global_ids is not None else None
        self._global_count = (
            int(global_count) if global_count is not None else len(spec.migrants)
        )

        self.sim = Simulator()
        graph = spec.graph
        self.cluster = Cluster(
            self.sim, self.config, graph.nodes, link_specs=graph.spec_overrides()
        )
        n = len(spec.migrants)
        self.outcomes: list[MigrationOutcome | None] = [None] * n
        self.results: list[ExecutionResult | None] = [None] * n
        #: Attached invariant checkers (when config.checks.enabled).
        self.checkers: list[object | None] = [None] * n
        #: Each migrant's current InfoDaemon (``None`` without one).
        self.migrant_infods: list[InfoDaemon | None] = [None] * n
        #: Shared daemons, keyed (destination, home): concurrent migrants
        #: on the same node pair share one measurement stream.
        self._infods: dict[tuple[str, str], InfoDaemon] = {}
        self._executed = False

        #: Shared batched-analysis engine pool (config.batch.enabled /
        #: REPRO_BATCH=1): all AMPoM migrants of this run keep their
        #: window state as rows of the same arrays.  Bit-identical to the
        #: scalar per-migrant path, so flipping the flag changes nothing
        #: observable (gated by the golden matrix).
        self.batch_pool = None
        if self.config.batch.enabled:
            from ..core.batch import BatchedAnalysisPool

            self.batch_pool = BatchedAnalysisPool()

        # Fault injection: when the spec can perturb anything, wrap every
        # link a migrant's paging traffic crosses in lossy directions
        # driven by one seeded plan.  Random injection is armed only once
        # the first migrant resumes (see _migrant), so the freeze-time
        # bulk transfers stay untouched.
        self.fault_plan: FaultPlan | None = None
        self.injection_log: FaultInjectionLog | None = None
        if self.config.faults.active:
            self.injection_log = FaultInjectionLog()
            self.fault_plan = FaultPlan(
                self.config.faults,
                seed=self.config.seed,
                log=self.injection_log,
                active_from=float("inf"),
            )
            for a, b in self._lossy_pairs():
                install_lossy_link(self.cluster.network, a, b, self.fault_plan)

        # Whole-node failure schedule (NodeFaultSpec): seeded crash/restart
        # windows per topology node.  A crashed node takes its deputies,
        # infod answers, and gossip participation down atomically; the
        # per-migrant recovery paths live in _migrant.  The file server is
        # protected — FFA assumes a reliable backing store.
        self.node_plan: NodeFaultPlan | None = None
        self.node_stats = NodeFaultStats()
        if self.obs is not None and self.obs.journeys is not None:
            # Every true failure detection (probe escalation, retransmit
            # conclusion) also lands in the journey log's cluster lane, so
            # detections reconcile exactly against the stats counter.
            self.node_stats.on_detection = self.obs.journeys.on_detection
        #: Fleet-telemetry aggregation state (armed obs.fleet only): live
        #: residencies/deputies grouped per node so one gauge per (node,
        #: series) samples the node-wide aggregate.
        self._fleet_residencies: dict[str, list] = {}
        self._fleet_deputies: dict[str, list] = {}
        self._fleet_tracked: set[tuple[str, str]] = set()
        self._fleet_gauges = None  # lazy FleetGaugeSet (one per runtime)
        #: Optional re-targeting hook ``f(route, hop, now) -> node | None``
        #: installed by :class:`repro.cluster.scheduler.SchedulerDriver`;
        #: consulted when a migration's destination is dark.
        self.retarget = None
        if self.config.node_faults.active:
            plan = NodeFaultPlan(
                self.config.node_faults,
                seed=self.config.seed,
                nodes=graph.nodes,
                protected={FILE_SERVER} if FILE_SERVER in graph.nodes else (),
            )
            if plan.active:
                self.node_plan = plan
                if self.injection_log is None:
                    self.injection_log = FaultInjectionLog()
                self._schedule_node_boundaries()

        # Section 5.5: tc/iptables shaping of individual links.
        for link in graph.links:
            if link.shaped_bandwidth_bps is not None:
                shaper = TrafficShaper(self.cluster.network.link_between(link.a, link.b))
                shaper.apply(link.shaped_bandwidth_bps, link.shaped_latency_s)

        # Wire-occupancy spans: attach the tracer's hook to both directions
        # of every migrant-crossed link (after any lossy wrapping, so
        # injected runs trace the wrapper's base transfers).  Pure observer
        # — the hook only records; arrival arithmetic is unchanged.
        if self.obs is not None and self.obs.tracer is not None:
            hook = self.obs.tracer.wire_hook()
            network = self.cluster.network
            for a, b in self._paging_pairs():
                network.direction(a, b).trace_hook = hook
                network.direction(b, a).trace_hook = hook

        #: Background CPU load, keyed by node (scheduled at construction).
        self.background = {
            node: BackgroundLoad(self.sim, self.cluster.node(node), list(windows))
            for node, windows in spec.background.items()
        }

    # ------------------------------------------------------------------
    # link selection
    # ------------------------------------------------------------------
    def _paging_pairs(self) -> list[tuple[str, str]]:
        """Ordered unique node pairs the migrants' deputy traffic crosses:
        consecutive path hops plus every home-dependency link.  File-server
        links are excluded — FFA's flush stream has no deputy protocol on
        it (and the legacy driver never wrapped or traced it either)."""
        pairs: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()

        def add(a: str, b: str) -> None:
            key = (a, b) if a <= b else (b, a)
            if a == b or key in seen:
                return
            seen.add(key)
            pairs.append((a, b))

        for migrant in self.spec.migrants:
            path = migrant.path
            for i in range(len(path) - 1):
                add(path[i], path[i + 1])
            for node in path[2:]:
                add(path[0], node)
        return pairs

    def _lossy_pairs(self) -> list[tuple[str, str]]:
        """The pairs to wrap in lossy directions: the migrants' paging
        links, minus any the graph pins ``lossy=False``, plus any it pins
        ``lossy=True``."""
        graph = self.spec.graph
        pairs: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        for a, b in self._paging_pairs():
            link = graph.link_spec(a, b)
            if link is not None and link.lossy is False:
                continue
            key = (a, b) if a <= b else (b, a)
            seen.add(key)
            pairs.append((a, b))
        for link in graph.links:
            if link.lossy and link.pair not in seen:
                pairs.append((link.a, link.b))
        return pairs

    # ------------------------------------------------------------------
    # whole-node failure machinery
    # ------------------------------------------------------------------
    def _schedule_node_boundaries(self) -> None:
        """Schedule a logging/counting callback at every crash/restart
        boundary of the node plan (boundaries after the last migrant
        finishes simply never fire)."""
        assert self.node_plan is not None
        for time, node, is_crash in self.node_plan.boundaries():
            self.sim.schedule_at(time, self._node_boundary(node, time, is_crash))

    def _node_boundary(self, node: str, time: float, is_crash: bool):
        def fire() -> None:
            n = self.cluster.node(node)
            if is_crash:
                n.crashes += 1
                self.node_stats.crashes += 1
                kind = FaultEventKind.NODE_CRASH
            else:
                n.restarts += 1
                self.node_stats.restarts += 1
                kind = FaultEventKind.NODE_RESTART
            if self.injection_log is not None:
                self.injection_log.record(time, kind, channel="node", detail=node)

        return fire

    def _arm_deputy(self, deputy, node: str, born: float) -> None:
        """Tie a deputy's liveness to its host node: once the node crashes
        after ``born`` the deputy is permanently gone (requests are
        ignored), even across the node's restart."""
        plan = self.node_plan
        if plan is None or deputy is None or deputy.node_outage is not None:
            return

        def outage(t: float, _node: str = node, _born: float = born) -> bool:
            return plan.down(_node, t) or plan.crashed_in(_node, _born, t)

        deputy.node_outage = outage
        if deputy.node_log is None:
            deputy.node_log = self.injection_log

    def _arm_transit_deputies(self, outcome: MigrationOutcome) -> None:
        """Arm any transit deputies a rehop just created (the home deputy
        keeps its original closure — _arm_deputy preserves the birth)."""
        service = outcome.page_service
        deputies = getattr(service, "deputies", None)
        if deputies is None or not hasattr(service, "transit_routes"):
            return
        for (node, born), deputy in zip(service.transit_routes(), deputies[1:]):
            self._arm_deputy(deputy, node, born)

    def _hazard_for(self, node: str, since: float, home: str, home_since: float, infod):
        """Build the executor's between-events crash check for one leg.

        The migrant's *own* node is checked omnisciently (the process dies
        with the machine — there is nobody left to be notified); the home
        node's death is only acted on once the failure detector (infod
        probe suspicion) has noticed it, so a CPU-bound migrant that never
        talks to a dead home keeps running until it does.
        """
        plan = self.node_plan
        assert plan is not None

        def check(now: float) -> None:
            if plan.down(node, now) or plan.crashed_in(node, since, now):
                raise ProcessLostError(
                    f"node {node!r} crashed under the migrant at t={now:.6f}"
                )
            if (
                infod is not None
                and infod.suspected
                and plan.crashed_in(home, home_since, now)
            ):
                raise ProcessLostError(
                    f"home node {home!r} crashed at t={now:.6f}; the deputy is "
                    "gone and openMosix's home dependency kills the migrant"
                )

        return check

    def _crash_handler(
        self,
        outcome: MigrationOutcome,
        home: str,
        home_since: float,
        journey: str | None = None,
    ):
        """Build the executor's ``on_crash_detect`` hook: fired when the
        retry protocol concludes a remote server is dead.  Home death is
        fatal (checked first); a dead transit deputy triggers chain repair
        — its pages are re-sourced from the home deputy and the route is
        dropped, so the pending retransmission reaches a live server.
        """
        plan = self.node_plan
        assert plan is not None

        def handle() -> None:
            now = self.sim.now
            if plan.crashed_in(home, home_since, now):
                # Probe-timeout escalation IS a failure detection: latency
                # runs from the crash instant to the protocol's conclusion.
                crash = plan.first_crash_in(home, home_since, now)
                if crash is not None:
                    self.node_stats.record_detection(now - crash, node=home, at=now)
                raise ProcessLostError(
                    f"home node {home!r} crashed at t={now:.6f}; the deputy is "
                    "gone and openMosix's home dependency kills the migrant"
                )
            service = outcome.page_service
            if not hasattr(service, "transit_routes"):
                return
            for node, born in list(service.transit_routes()):
                if plan.crashed_in(node, born, now):
                    crash = plan.first_crash_in(node, born, now)
                    if crash is not None:
                        self.node_stats.record_detection(now - crash, node=node, at=now)
                    lost = service.repair_route(node, now)
                    self.node_stats.chain_repairs += 1
                    self.node_stats.pages_rehomed += len(lost)
                    if journey is not None and self.obs is not None and self.obs.journeys is not None:
                        self.obs.journeys.record(
                            journey, "chain_repair", now, node=node, pages=len(lost)
                        )
                    if self.injection_log is not None:
                        self.injection_log.record(
                            now,
                            FaultEventKind.CHAIN_REPAIR,
                            channel="migrant",
                            detail=f"node={node} pages={len(lost)}",
                        )

        return handle

    # ------------------------------------------------------------------
    @property
    def executed(self) -> bool:
        return self._executed

    def measure_freeze(self, index: int = 0) -> MigrationOutcome:
        """Perform only migrant ``index``'s first migration freeze (no
        trace execution) — figure 5 needs nothing else."""
        if self._executed or self.outcomes[index] is not None:
            raise MigrationError("ScenarioRuntime objects are single-use")
        migrant = self.spec.migrants[index]
        strategy = resolve_strategy(migrant.strategy)
        space = migrant.workload.setup()
        ctx = self._context(
            migrant,
            strategy,
            space,
            migrant.workload.premigration_pages(),
            src=migrant.path[0],
            dst=migrant.path[1],
        )
        outcome = strategy.perform(ctx)
        self.outcomes[index] = outcome
        return outcome

    def execute(self) -> list[ExecutionResult]:
        """Run every migrant to completion; returns results in spec order."""
        if self._executed or any(o is not None for o in self.outcomes):
            raise MigrationError("ScenarioRuntime objects are single-use")
        self._executed = True
        migrants = self.spec.migrants
        single = self._global_count == 1
        procs = []
        for i, migrant in enumerate(migrants):
            gid = self._global_ids[i] if self._global_ids is not None else i
            name = migrant.name or ("scenario" if single else f"migrant-{gid}")
            procs.append(self.sim.spawn(self._migrant(i, migrant), name=name))
        for proc in procs:
            self.sim.run_until_complete(proc, max_events=self.spec.max_events)
        for infod in self._infods.values():
            infod.stop()
        assert all(r is not None for r in self.results)
        return list(self.results)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def _context(
        self,
        migrant: MigrantSpec,
        strategy: MigrationStrategy,
        space,
        premigration,
        src: str,
        dst: str,
    ) -> MigrationContext:
        file_server = None
        if isinstance(strategy, FfaMigration) and FILE_SERVER in self.cluster.nodes:
            file_server = FILE_SERVER
        return MigrationContext(
            sim=self.sim,
            network=self.cluster.network,
            hardware=self.config.hardware,
            ampom=self.config.ampom,
            src=src,
            dst=dst,
            address_space=space,
            premigration_pages=premigration,
            file_server=file_server,
            fault_plan=self.fault_plan,
            home=migrant.path[0],
            path=migrant.path,
            batch_pool=self.batch_pool,
            prefetch_policy=(
                migrant.prefetch_policy
                if migrant.prefetch_policy is not None
                else self.config.prefetch_policy
            ),
        )

    def _infod_for(self, dst: str, home: str) -> InfoDaemon:
        key = (dst, home)
        infod = self._infods.get(key)
        if infod is None:
            infod = InfoDaemon(
                self.sim,
                self.cluster.node(dst),
                to_home=self.cluster.network.direction(dst, home),
                from_home=self.cluster.network.direction(home, dst),
                config=self.config.infod,
                min_bandwidth_fraction=self.config.ampom.min_bandwidth_fraction,
                node_plan=self.node_plan,
                home=home,
                suspect_after=self.config.node_faults.probe_suspect_after,
                stats=self.node_stats,
            )
            self._infods[key] = infod
        return infod

    def _stop_infod(self, dst: str, home: str) -> None:
        infod = self._infods.pop((dst, home), None)
        if infod is not None:
            infod.stop()

    # ------------------------------------------------------------------
    # the migrant process
    # ------------------------------------------------------------------
    def _migrant(self, index: int, migrant: MigrantSpec):
        sim = self.sim
        config = self.config
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        jlog = obs.journeys if obs is not None else None
        single = self._global_count == 1
        gid = self._global_ids[index] if self._global_ids is not None else index
        # The journey key matches the spawned process name, which for
        # sustained phase-2 migrants is the phase-1 task name — the same
        # journey accumulates both phases' events.
        jname = migrant.name or ("scenario" if single else f"migrant-{gid}")
        journey = jname if jlog is not None else None
        path = migrant.path
        # Mutable copy of the path: failure-aware re-targeting may rewrite
        # a hop whose destination crashed.  Same length, same start.
        route = list(path)
        plan = self.node_plan
        # The classic single-migrant scenario starts at t=0 with no delay
        # event; staggered multi-migrant runs always schedule one.
        if not single or migrant.start_s > 0.0:
            yield Timeout(migrant.start_s)
        if jlog is not None:
            jlog.record(jname, "exec_start", sim.now, route=list(route))

        strategy = resolve_strategy(migrant.strategy)
        space = migrant.workload.setup()
        premigration = migrant.workload.premigration_pages()

        # --- first migration, with destination-crash abort/rollback ------
        # A crash of the destination inside the freeze aborts the attempt:
        # the partial transfer is written off, the stall is charged to the
        # freeze bucket, and the migrant retries (re-targeted at a survivor
        # when a SchedulerDriver installed a retarget hook, after the
        # destination's restart plus a backoff otherwise).  Every second
        # spent on aborted attempts lands in ``pre_freeze`` and from there
        # in the budget's freeze bucket, so the wall-time identity holds.
        pre_freeze = 0.0
        attempt = 0
        while True:
            home = route[0]
            if plan is not None and (
                plan.down(home, sim.now) or plan.crashed_in(home, 0.0, sim.now)
            ):
                # The process was still on its home node when that node
                # crashed: it dies before migrating at all.
                result = self._killed_before_migration(migrant, home, journey=journey)
                self.results[index] = result
                return result
            dst = route[1]
            if plan is not None and plan.down(dst, sim.now):
                # The destination is dark before the freeze even starts:
                # the connect attempt times out, then re-target or wait.
                wait = config.retry.timeout_s
                if tracer is not None:
                    tracer.complete(
                        MIGRANT_TRACK, "freeze", sim.now, wait, "freeze", aborted=True
                    )
                yield Timeout(wait)
                pre_freeze += wait
                attempt += 1
                if attempt > config.retry.max_attempts:
                    raise MigrationError(
                        f"migration of {migrant.workload.name} to {dst!r} kept "
                        f"aborting ({attempt} attempts): the destination outage "
                        "outlasts the retry budget"
                    )
                pre_freeze += yield from self._handle_abort(
                    route, 1, attempt - 1, "connect timeout", journey=journey
                )
                continue
            ctx = self._context(
                migrant, strategy, space, premigration, src=route[0], dst=dst
            )
            outcome = strategy.perform(ctx)
            if plan is None:
                break
            crash = plan.first_crash_in(dst, sim.now, sim.now + outcome.freeze_time)
            if crash is None:
                break
            # Destination died mid-freeze: roll back.  The time already
            # spent freezing is wasted (charged to freeze) and the pages
            # shipped so far are written off with the discarded outcome.
            wasted = crash - sim.now
            self.node_stats.abort_freeze_s += wasted
            self.node_stats.pages_abort_written_off += outcome.pages_shipped
            if wasted > 0.0:
                if tracer is not None:
                    tracer.complete(
                        MIGRANT_TRACK, "freeze", sim.now, wasted, "freeze", aborted=True
                    )
                yield Timeout(wasted)
                pre_freeze += wasted
            attempt += 1
            if attempt > config.retry.max_attempts:
                raise MigrationError(
                    f"migration of {migrant.workload.name} to {dst!r} kept "
                    f"aborting ({attempt} attempts): the destination outage "
                    "outlasts the retry budget"
                )
            pre_freeze += yield from self._handle_abort(
                route, 1, attempt - 1, f"crashed {wasted:.4g}s into the freeze",
                journey=journey,
            )
        self.outcomes[index] = outcome
        home = route[0]
        home_since = sim.now
        if plan is not None:
            self._arm_deputy(
                getattr(outcome.page_service, "deputy", None), home, home_since
            )

        infod = None
        if migrant.with_infod and outcome.policy is not None:
            infod = self._infod_for(dst=route[1], home=home)
            self.migrant_infods[index] = infod
        if self.fault_plan is not None:
            # Faults begin the instant the first migrant resumes; a later
            # activation may not postpone an earlier migrant's exposure.
            resume = sim.now + outcome.freeze_time
            if resume < self.fault_plan.active_from:
                self.fault_plan.activate(resume)
        if tracer is not None:
            # The freeze span pairs with the executor's ``budget.freeze +=
            # outcome.freeze_time`` charge — same float, recorded first, so
            # bucket_sums()["freeze"] reproduces the budget bit for bit.
            tracer.complete(
                MIGRANT_TRACK,
                "freeze",
                sim.now,
                outcome.freeze_time,
                "freeze",
                strategy=outcome.strategy,
                pages=outcome.pages_shipped,
            )
        if jlog is not None:
            jlog.record(
                jname, "freeze", sim.now,
                src=route[0], dst=route[1], hop=1,
                dur_s=outcome.freeze_time, pages=outcome.pages_shipped,
            )
        yield Timeout(outcome.freeze_time)

        retry = config.retry if self.fault_plan is not None else None
        retry_rng = None
        if self.fault_plan is not None:
            stream = "retry" if single else f"retry-{gid}"
            retry_rng = child_rng(config.seed, stream)
        if retry is None and plan is not None and hasattr(outcome.page_service, "next_seq"):
            # Pure node-fault runs arm the reliable protocol too: requests
            # to a dead deputy go unanswered, and only the retransmission
            # loop turns that silence into detection + repair.  FFA has no
            # sequence IDs — it participates through aborts and kills only.
            retry = config.retry
            stream = "retry" if single else f"retry-{gid}"
            retry_rng = child_rng(config.seed, stream)

        checker = None
        observers = ()
        carry = None
        run_time_base = 0.0
        hop = 1
        executor = None
        leg_start = sim.now
        try:
            while True:
                last = hop == len(route) - 1
                leg_start = sim.now
                preempt_at = None if last else leg_start + migrant.hop_delays[hop - 1]
                executor = MigrantExecutor(
                    sim=sim,
                    workload=migrant.workload,
                    outcome=outcome,
                    node=self.cluster.node(route[hop]),
                    hardware=config.hardware,
                    infod=infod,
                    capacity_pages=migrant.capacity_pages,
                    fault_log=migrant.fault_log,
                    retry=retry,
                    retry_rng=retry_rng,
                    injection_log=self.injection_log,
                    obs=obs,
                    preempt_at=preempt_at,
                    carry=carry,
                    run_time_base=run_time_base,
                )
                if carry is None:
                    executor.budget.freeze += pre_freeze
                    if config.checks.enabled:
                        checker = self._make_checker(index, outcome, executor)
                    observers = self._attach_observers(
                        outcome, executor, home=home, dst=route[hop]
                    )
                else:
                    executor.checker = checker
                if plan is not None:
                    executor.hazard = self._hazard_for(
                        route[hop], leg_start - outcome.freeze_time,
                        home, home_since, infod,
                    )
                    executor.on_crash_detect = self._crash_handler(
                        outcome, home, home_since, journey=journey
                    )
                proc = executor.start()
                result = yield proc
                if proc.error is not None:
                    raise proc.error
                if not executor.preempted:
                    break

                # --- re-migration hop (section 3.2) -----------------------
                # Quiesce on the current node: absorb or write off every page
                # still on the wire, then hand the trace to the next leg.
                yield from self._quiesce(executor, outcome)
                run_time_base += sim.now - leg_start
                src = route[hop]
                hop += 1
                if plan is not None:
                    # Failure-aware re-hop: never freeze toward a node that
                    # is currently dark — re-target or wait out its restart.
                    rehop_attempt = 0
                    while plan.down(route[hop], sim.now):
                        rehop_attempt += 1
                        if rehop_attempt > config.retry.max_attempts:
                            raise MigrationError(
                                f"re-migration of {migrant.workload.name} to "
                                f"{route[hop]!r} kept aborting "
                                f"({rehop_attempt} attempts): the destination "
                                "outage outlasts the retry budget"
                            )
                        waited = yield from self._handle_abort(
                            route, hop, rehop_attempt - 1, "rehop target dark",
                            journey=journey,
                        )
                        executor.budget.freeze += waited
                hop_ctx = self._context(
                    migrant, strategy, space, premigration, src=src, dst=route[hop]
                )
                strategy.rehop(hop_ctx, outcome)
                if plan is not None:
                    self._arm_transit_deputies(outcome)
                if tracer is not None:
                    tracer.complete(
                        MIGRANT_TRACK,
                        "freeze",
                        sim.now,
                        outcome.freeze_time,
                        "freeze",
                        strategy=outcome.strategy,
                        pages=outcome.pages_shipped,
                    )
                if jlog is not None:
                    jlog.record(
                        jname, "freeze", sim.now,
                        src=src, dst=route[hop], hop=hop,
                        dur_s=outcome.freeze_time, pages=outcome.pages_shipped,
                    )
                if infod is not None:
                    if single:
                        self._stop_infod(dst=src, home=route[0])
                    infod = None
                if migrant.with_infod and outcome.policy is not None:
                    infod = self._infod_for(dst=route[hop], home=route[0])
                    self.migrant_infods[index] = infod
                if obs is not None:
                    # A transit deputy may have appeared; hand it the bundle.
                    for deputy in getattr(outcome.page_service, "deputies", ()):
                        deputy.obs = obs
                carry = executor.carry_out()
                yield Timeout(outcome.freeze_time)
        except ProcessLostError as lost:
            result = self._teardown_killed(
                migrant, outcome, executor, checker, observers, infod,
                lost, run_time_base, leg_start, single, journey=journey,
            )
            self.results[index] = result
            return result

        assert isinstance(result, ExecutionResult)
        if len(route) > 2:
            result.extra["hops"] = float(len(route) - 1)
        if checker is not None:
            checker.final_audit()
            sim.remove_observer(checker.on_sim_event)
        for callback in observers:
            sim.remove_observer(callback)
        if single and infod is not None:
            self._stop_infod(dst=route[-1], home=route[0])
        if obs is not None and obs.metrics is not None:
            self._finalize_metrics(obs.metrics, result)
        if jlog is not None:
            jlog.finish(jname, sim.now, "completed", hops=len(route) - 1)
        self.results[index] = result
        return result

    def _quiesce(self, executor: MigrantExecutor, outcome: MigrationOutcome):
        """Drain the preempted leg's wire state before re-migrating:
        absorb and copy every page that still arrives (waiting for the
        last finite arrival, charged as stall), then write off lost pages
        (infinite arrival) back to REMOTE — they re-fetch on demand from
        whichever deputy holds them after the hop."""
        sim = self.sim
        res = outcome.residency
        tr = executor._tracer
        executor._acquire_cpu()
        try:
            while True:
                if res.in_flight_map:
                    res.absorb_arrivals(sim.now)
                if res.buffered_set:
                    yield from executor._copy_buffered(res)
                finite = [t for t in res.in_flight_map.values() if not math.isinf(t)]
                if not finite:
                    break
                wait = max(max(finite) - sim.now, 0.0)
                if wait > 0.0:
                    t0 = sim.now if tr is not None else 0.0
                    yield Timeout(wait)
                    executor.budget.stall += wait
                    if tr is not None:
                        tr.complete(MIGRANT_TRACK, "stall", t0, wait, "stall")
        finally:
            executor._release_cpu()
        lost = res.write_off_lost()
        if lost:
            executor.counters.prefetch_writeoffs += len(lost)
            for vpn in lost:
                executor.discard_fetch(vpn)

    # ------------------------------------------------------------------
    # node-failure recovery paths
    # ------------------------------------------------------------------
    def _handle_abort(
        self, route: list, hop: int, attempt: int, detail: str,
        journey: str | None = None,
    ):
        """Recover an aborted/unreachable migration hop: re-target at a
        survivor when a retarget hook is installed, otherwise wait out the
        destination's restart plus an exponential backoff.  Yields the
        wait in simulated time and *returns* it so the caller can charge
        it to the freeze bucket (keeping the wall-time identity)."""
        sim = self.sim
        plan = self.node_plan
        assert plan is not None
        dst = route[hop]
        jlog = self.obs.journeys if self.obs is not None else None
        self.node_stats.migration_aborts += 1
        if journey is not None and jlog is not None:
            jlog.record(journey, "abort", sim.now, dst=dst, hop=hop, detail=detail)
        if self.injection_log is not None:
            self.injection_log.record(
                sim.now,
                FaultEventKind.MIGRATION_ABORT,
                channel="migrant",
                detail=f"dst={dst} {detail}",
            )
        target = self.retarget(route, hop, sim.now) if self.retarget is not None else None
        if target is not None and target != dst:
            route[hop] = target
            self.node_stats.retargets += 1
            if journey is not None and jlog is not None:
                jlog.record(
                    journey, "retarget", sim.now, hop=hop, src=dst, dst=target
                )
            if self.injection_log is not None:
                self.injection_log.record(
                    sim.now,
                    FaultEventKind.RETARGET,
                    channel="migrant",
                    detail=f"{dst}->{target}",
                )
            return 0.0
        wait = self.config.retry.timeout_for(attempt, 0.0)
        if plan.down(dst, sim.now):
            wait += plan.restart_time(dst, sim.now) - sim.now
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is not None:
            tracer.complete(MIGRANT_TRACK, "freeze", sim.now, wait, "freeze", aborted=True)
        yield Timeout(wait)
        return wait

    def _record_kill(self, detail: str, journey: str | None = None) -> None:
        self.node_stats.kills += 1
        if journey is not None and self.obs is not None and self.obs.journeys is not None:
            self.obs.journeys.finish(journey, self.sim.now, "killed", detail=detail)
        if self.injection_log is not None:
            self.injection_log.record(
                self.sim.now, FaultEventKind.KILL, channel="migrant", detail=detail
            )

    def _killed_before_migration(
        self, migrant: MigrantSpec, home: str, journey: str | None = None
    ) -> ExecutionResult:
        """The home node crashed while the process still lived on it: the
        process dies without ever migrating.  Nothing to tear down — no
        outcome, no ledgers — just a zeroed result flagged killed."""
        from ..metrics.counters import Counters
        from ..metrics.timeline import TimeBudget

        self._record_kill(f"home {home} crashed before migration", journey=journey)
        return ExecutionResult(
            strategy=migrant.strategy,
            workload=migrant.workload.name,
            memory_bytes=migrant.workload.memory_bytes,
            freeze_time=0.0,
            run_time=0.0,
            budget=TimeBudget(),
            counters=Counters(),
            extra={"killed": 1.0},
        )

    def _teardown_killed(
        self,
        migrant: MigrantSpec,
        outcome: MigrationOutcome,
        executor: MigrantExecutor,
        checker,
        observers,
        infod,
        lost: ProcessLostError,
        run_time_base: float,
        leg_start: float,
        single: bool,
        journey: str | None = None,
    ) -> ExecutionResult:
        """Clean teardown after a whole-node crash killed the migrant.

        The ledgers are settled so every invariant still balances: pages
        lost on the wire are written off back to REMOTE, and every
        surviving deputy forfeits the pages it held for the dead process
        (the origin reclaims that memory).  The final audit runs on the
        settled state — a kill is a *modelled* outcome, not a checker
        violation."""
        sim = self.sim
        self._record_kill(str(lost).splitlines()[0], journey=journey)
        written_off = outcome.residency.write_off_lost()
        if written_off:
            executor.counters.prefetch_writeoffs += len(written_off)
            for vpn in written_off:
                executor.discard_fetch(vpn)
        service = outcome.page_service
        deputies = getattr(service, "deputies", None)
        if deputies is None:
            deputy = getattr(service, "deputy", None)
            deputies = [deputy] if deputy is not None else []
        for deputy in deputies:
            deputy.hpt.forfeit_all()
        executor._collect_fault_stats()
        run_time = run_time_base + (sim.now - leg_start)
        result = ExecutionResult(
            strategy=outcome.strategy,
            workload=migrant.workload.name,
            memory_bytes=migrant.workload.memory_bytes,
            freeze_time=executor.budget.freeze,
            run_time=run_time,
            budget=executor.budget,
            counters=executor.counters,
            wasted_pages=(
                len(executor._fetched - executor._touched)
                if executor.track_touched
                else 0
            ),
            extra=dict(outcome.extra),
            prefetch_policy=getattr(outcome.policy, "name", "") or "",
        )
        result.extra["killed"] = 1.0
        if checker is not None:
            pending = getattr(executor, "_pending_fault", None)
            if pending is not None:
                checker.note_interrupted_fault(pending)
            checker.final_audit()
            sim.remove_observer(checker.on_sim_event)
        for callback in observers:
            sim.remove_observer(callback)
        if single and infod is not None:
            for key, daemon in list(self._infods.items()):
                if daemon is infod:
                    self._infods.pop(key)
                    daemon.stop()
        return result

    # ------------------------------------------------------------------
    def _make_checker(self, index: int, outcome: MigrationOutcome, executor: MigrantExecutor):
        """Attach the repro.check invariant checker + oracle (observers)."""
        from ..check import DifferentialOracle, InvariantChecker

        checker = InvariantChecker(
            self.config.checks, self.sim, outcome, executor.counters,
            node_plan=self.node_plan,
        )
        executor.checker = checker
        self.checkers[index] = checker
        self.sim.add_observer(checker.on_sim_event)
        if self.config.checks.oracle and hasattr(outcome.policy, "check_oracle"):
            outcome.policy.check_oracle = DifferentialOracle()
        return checker

    def _attach_observers(
        self,
        outcome: MigrationOutcome,
        executor: MigrantExecutor,
        home: str = "",
        dst: str = "",
    ):
        """Register obs gauge samplers / inspector probes with the
        simulator; returns the observer callbacks to detach at run end.

        ``home``/``dst`` name the migrant's home and first-destination
        nodes for fleet telemetry: armed ``obs.fleet`` samples the deputy
        queue depth under ``home`` and the resident/remote/in-flight page
        counts under ``dst``, aggregated node-wide when several migrants
        share a node."""
        obs = self.obs
        if obs is None:
            return ()
        from ..obs import GaugeSampler
        from ..obs.spans import DEPUTY_TRACK

        sim = self.sim
        observers = []
        deputy = getattr(outcome.page_service, "deputy", None)
        if deputy is not None and (obs.tracer is not None or obs.metrics is not None):
            # Only span/metrics instruments read deputy.obs; leaving it
            # unset for fleet/journey-only bundles keeps the deputy's
            # per-request hot path on its no-observer fast branch.
            deputy.obs = obs
        fleet = obs.fleet
        if fleet is not None:
            # Fleet gauges aggregate every live migrant on a node, so they
            # stay attached for the whole run (the runtime is single-use)
            # rather than detaching with the migrant that created them.
            # One FleetGaugeSet carries every series behind a single
            # simulator observer so the per-event cost stays flat as
            # migrants accumulate.
            from ..obs.fleet import FleetGaugeSet

            gauges = self._fleet_gauges
            if gauges is None:
                gauges = self._fleet_gauges = FleetGaugeSet(
                    fleet, fleet.interval_s
                )
                sim.add_observer(gauges.on_sim_event)
            if deputy is not None and home:
                queue = self._fleet_deputies.setdefault(home, [])
                queue.append(deputy)
                if ("deputy", home) not in self._fleet_tracked:
                    self._fleet_tracked.add(("deputy", home))
                    gauges.add(
                        home, "deputy_queue_depth_s",
                        lambda q=queue: sum(
                            max(0.0, d.busy_until - sim.now) for d in q
                        ),
                    )
            if dst:
                residencies = self._fleet_residencies.setdefault(dst, [])
                residencies.append(outcome.residency)
                if ("residency", dst) not in self._fleet_tracked:
                    self._fleet_tracked.add(("residency", dst))
                    for series, attr in (
                        ("resident_pages", "n_mapped"),
                        ("remote_pages", "n_remote"),
                        ("in_flight_pages", "n_in_flight"),
                    ):
                        gauges.add(
                            dst, series,
                            lambda rs=residencies, a=attr: float(
                                sum(getattr(r, a) for r in rs)
                            ),
                        )
        if deputy is not None and (obs.metrics is not None or obs.tracer is not None):
            sampler = GaugeSampler(
                "deputy_queue_depth_s",
                DEPUTY_TRACK,
                lambda: max(0.0, deputy.busy_until - sim.now),
                obs.sample_interval_s,
                metrics=obs.metrics,
                tracer=obs.tracer,
            )
            sim.add_observer(sampler.on_sim_event)
            observers.append(sampler.on_sim_event)
        inspector = obs.inspector
        if inspector is not None:
            counters = executor.counters
            budget = executor.budget
            inspector.add_probe("major_faults", lambda: float(counters.major_faults))
            inspector.add_probe(
                "prefetched", lambda: float(counters.pages_prefetched)
            )
            inspector.add_probe("stall_s", lambda: budget.stall)
            inspector.add_probe("compute_s", lambda: budget.compute)
            if deputy is not None:
                inspector.add_probe(
                    "deputy_queue_s", lambda: max(0.0, deputy.busy_until - sim.now)
                )
            sim.add_observer(inspector.on_sim_event)
            observers.append(inspector.on_sim_event)
        return observers

    @staticmethod
    def _finalize_metrics(metrics, result: ExecutionResult) -> None:
        """Fold end-of-run prefetch accuracy/waste scalars into the registry.

        Besides the aggregate counters, the accuracy/waste pair is also
        recorded under a ``{policy="<name>"}``-labeled counter so multi-
        policy sweeps (the arena) can tell the policies apart in one
        registry.
        """
        c = result.counters
        prefetched = c.pages_prefetched
        wasted = result.wasted_pages
        metrics.set_counter("pages_prefetched", float(prefetched))
        metrics.set_counter("pages_demand_fetched", float(c.pages_demand_fetched))
        metrics.set_counter("wasted_pages", float(wasted))
        label = result.prefetch_policy or "none"
        if prefetched > 0:
            useful = max(prefetched - wasted, 0)
            metrics.set_counter("prefetch_accuracy", useful / prefetched)
            metrics.set_counter("prefetch_waste_fraction", wasted / prefetched)
            metrics.set_counter(
                f'prefetch_accuracy{{policy="{label}"}}', useful / prefetched
            )
            metrics.set_counter(
                f'prefetch_waste_fraction{{policy="{label}"}}', wasted / prefetched
            )
