"""Unit tests for the Linux-style read-ahead baseline."""

from __future__ import annotations

import pytest

from repro.errors import MemoryStateError
from repro.mem.readahead import LinuxReadAhead, sequential_successors


class TestSequentialSuccessors:
    def test_basic(self):
        assert list(sequential_successors(10, 3, limit=100)) == [11, 12, 13]

    def test_truncated_by_limit(self):
        assert list(sequential_successors(10, 5, limit=12)) == [11]

    def test_zero_count(self):
        assert list(sequential_successors(10, 0, limit=100)) == []

    def test_negative_count_rejected(self):
        with pytest.raises(MemoryStateError):
            list(sequential_successors(10, -1, limit=100))


class TestLinuxReadAhead:
    def test_window_doubles_on_sequential(self):
        ra = LinuxReadAhead(min_pages=4, max_pages=32)
        assert ra.on_access(10) == 4
        assert ra.on_access(11) == 8
        assert ra.on_access(12) == 16
        assert ra.on_access(13) == 32
        assert ra.on_access(14) == 32  # capped

    def test_seek_resets_window(self):
        ra = LinuxReadAhead(min_pages=4, max_pages=32)
        ra.on_access(10)
        ra.on_access(11)
        assert ra.window == 8
        assert ra.on_access(99) == 4

    def test_repeat_access_keeps_window(self):
        ra = LinuxReadAhead(min_pages=4, max_pages=32)
        ra.on_access(10)
        ra.on_access(11)
        assert ra.on_access(11) == 8

    def test_invalid_parameters(self):
        with pytest.raises(MemoryStateError):
            LinuxReadAhead(min_pages=0, max_pages=4)
        with pytest.raises(MemoryStateError):
            LinuxReadAhead(min_pages=8, max_pages=4)
