"""Tests for the full-scale freeze-time helpers (figure 5's fast path)."""

from __future__ import annotations

import pytest

from repro.errors import MigrationError
from repro.experiments import figures
from repro.experiments.calibration import PAPER_FREEZE_DGEMM_575


def test_freeze_time_full_scale_dgemm_575_matches_paper():
    """The paper's flagship numbers: 0.6 / 53.9 / 0.07 s (section 5.2)."""
    measured = {
        scheme: figures.freeze_time("DGEMM", 575, scheme)
        for scheme in ("AMPoM", "openMosix", "NoPrefetch")
    }
    assert measured["AMPoM"] == pytest.approx(PAPER_FREEZE_DGEMM_575["AMPoM"], rel=0.5)
    assert measured["openMosix"] == pytest.approx(
        PAPER_FREEZE_DGEMM_575["openMosix"], rel=0.25
    )
    assert measured["NoPrefetch"] < 0.1


def test_freeze_ordering_at_full_scale():
    for kernel, mb in (("STREAM", 115), ("FFT", 513)):
        nopf = figures.freeze_time(kernel, mb, "NoPrefetch")
        ampom = figures.freeze_time(kernel, mb, "AMPoM")
        om = figures.freeze_time(kernel, mb, "openMosix")
        assert nopf < ampom < om


def test_figure5_full_scale_structure():
    data = figures.figure5_full_scale(kernels=("RandomAccess",))
    series = data["RandomAccess"]["openMosix"]
    assert [mb for mb, _ in series] == [65, 129, 260, 513]
    freezes = [t for _, t in series]
    assert freezes == sorted(freezes)


def test_measure_freeze_is_single_use():
    from repro.cluster.runner import MigrationRun
    from repro.migration.openmosix import OpenMosixMigration
    from repro.workloads.synthetic import SequentialWorkload
    from repro.units import mib

    run = MigrationRun(SequentialWorkload(mib(1)), OpenMosixMigration())
    run.measure_freeze()
    with pytest.raises(MigrationError):
        run.measure_freeze()
    with pytest.raises(MigrationError):
        run.execute()
