"""Unit tests for the migrant executor's fault handling and accounting."""

from __future__ import annotations

import pytest

from repro.cluster.runner import MigrationRun
from repro.config import SimulationConfig
from repro.migration.ampom import AmpomMigration
from repro.migration.noprefetch import NoPrefetchMigration
from repro.migration.openmosix import OpenMosixMigration
from repro.units import mib
from repro.workloads.base import Syscall
from repro.workloads.synthetic import (
    AllocatingWorkload,
    SequentialWorkload,
    UniformRandomWorkload,
)


def run(workload, strategy, config=None, **kwargs):
    return MigrationRun(workload, strategy, config=config, **kwargs).execute()


class TestOpenMosixExecution:
    def test_no_faults_at_all(self):
        result = run(SequentialWorkload(mib(1)), OpenMosixMigration())
        assert result.counters.total_faults == 0
        assert result.counters.page_fault_requests == 0
        assert result.budget.stall == 0.0

    def test_run_time_equals_compute(self):
        w = SequentialWorkload(mib(1), sweeps=2)
        result = run(w, OpenMosixMigration())
        assert result.run_time == pytest.approx(w.total_compute_estimate())


class TestNoPrefetchExecution:
    def test_every_first_touch_is_a_demand_request(self):
        w = SequentialWorkload(mib(1), sweeps=2)
        result = run(w, NoPrefetchMigration())
        # All data pages except the trio's data page fault exactly once.
        expected = w.n_pages - 1
        assert result.counters.page_fault_requests == expected
        assert result.counters.pages_prefetched == 0

    def test_second_sweep_is_local(self):
        one = run(SequentialWorkload(mib(1), sweeps=1), NoPrefetchMigration())
        two = run(SequentialWorkload(mib(1), sweeps=2), NoPrefetchMigration())
        assert two.counters.page_fault_requests == one.counters.page_fault_requests

    def test_stall_scales_with_faults(self):
        small = run(SequentialWorkload(mib(1)), NoPrefetchMigration())
        large = run(SequentialWorkload(mib(4)), NoPrefetchMigration())
        assert large.budget.stall > small.budget.stall * 2


class TestAmpomExecution:
    def test_prefetching_reduces_demand_requests(self):
        nopf = run(SequentialWorkload(mib(2)), NoPrefetchMigration())
        ampom = run(SequentialWorkload(mib(2)), AmpomMigration())
        assert ampom.counters.page_fault_requests < nopf.counters.page_fault_requests / 5
        assert ampom.counters.pages_prefetched > 0

    def test_all_pages_fetched_exactly_once(self):
        w = SequentialWorkload(mib(2), sweeps=2)
        result = run(w, AmpomMigration())
        c = result.counters
        # Conservation: demand + prefetched = pages that crossed the wire;
        # every touched remote page crossed exactly once.
        assert c.pages_demand_fetched + c.pages_prefetched >= w.n_pages - 1
        assert c.pages_copied == c.pages_demand_fetched + c.pages_prefetched

    def test_analysis_time_charged(self):
        result = run(SequentialWorkload(mib(1)), AmpomMigration())
        assert result.budget.analysis > 0
        assert result.budget.analysis_overhead_fraction < 0.01

    def test_wasted_pages_bounded_for_full_coverage(self):
        result = run(SequentialWorkload(mib(2)), AmpomMigration())
        # Sequential trace touches everything; waste only past the end.
        assert result.wasted_pages <= 2 * SimulationConfig().ampom.max_zone_pages

    def test_random_workload_still_progresses(self):
        w = UniformRandomWorkload(mib(1), n_references=600)
        result = run(w, AmpomMigration())
        assert result.counters.total_faults > 0
        assert result.run_time > 0


class TestTimeAccountingIdentity:
    @pytest.mark.parametrize(
        "strategy_cls", [OpenMosixMigration, NoPrefetchMigration, AmpomMigration]
    )
    def test_wall_time_fully_attributed(self, strategy_cls):
        w = SequentialWorkload(mib(1), sweeps=2)
        result = run(w, strategy_cls())
        wall = result.freeze_time + result.run_time
        assert result.budget.total == pytest.approx(wall, rel=1e-9)


class TestPageCreation:
    def test_created_pages_never_cross_network(self):
        w = AllocatingWorkload(mib(1), fresh_fraction=0.5)
        result = run(w, AmpomMigration())
        c = result.counters
        assert c.create_faults == w.fresh_pages
        # Fresh pages are created locally: only 'old' pages cross the wire.
        assert c.pages_demand_fetched + c.pages_prefetched <= w.old_pages + 80

    def test_creation_with_openmosix(self):
        w = AllocatingWorkload(mib(1), fresh_fraction=0.25)
        result = run(w, OpenMosixMigration())
        assert result.counters.create_faults == w.fresh_pages
        assert result.counters.page_fault_requests == 0


class TestSyscalls:
    def test_forwarded_syscalls_counted_and_charged(self):
        w = SequentialWorkload(
            mib(1), sweeps=2, syscall_every_sweep=Syscall(service_time=0.002)
        )
        result = run(w, NoPrefetchMigration())
        assert result.counters.syscalls_forwarded == 2
        # Round trip + service, twice.
        assert result.budget.syscall > 2 * 0.002

    def test_syscalls_with_openmosix_deputy(self):
        w = SequentialWorkload(
            mib(1), sweeps=1, syscall_every_sweep=Syscall(service_time=0.001)
        )
        result = run(w, OpenMosixMigration())
        assert result.counters.syscalls_forwarded == 1
        assert result.budget.syscall > 0


class TestDeterminism:
    @pytest.mark.parametrize("strategy_cls", [AmpomMigration, NoPrefetchMigration])
    def test_identical_runs_identical_results(self, strategy_cls):
        def once():
            w = UniformRandomWorkload(mib(1), n_references=500, seed=11)
            return run(w, strategy_cls())

        a, b = once(), once()
        assert a.total_time == b.total_time
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.budget.as_dict() == b.budget.as_dict()
