"""Unit and property tests for stride detection.

The unit tests encode the paper's own worked examples (sections 3.1, 3.2,
3.4) verbatim, so any divergence from the published semantics fails here.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stride import find_outstanding_streams, stride_counts


class TestStrideCounts:
    def test_paper_example_section_3_1(self):
        """{1,99,2,45,3,78,4}: three stride-2 references, stride_2 = 4."""
        counts = stride_counts([1, 99, 2, 45, 3, 78, 4], dmax=4)
        assert counts[2] == 4
        assert counts[1] == 0

    def test_paper_example_section_3_2(self):
        """{10,99,11,34,12,85}: stride_2 = 3 (pages 10, 11, 12)."""
        counts = stride_counts([10, 99, 11, 34, 12, 85], dmax=4)
        assert counts[2] == 3
        assert counts[1] == 0
        assert counts[3] == 0
        assert counts[4] == 0

    def test_pure_sequential_is_all_stride_1(self):
        counts = stride_counts([1, 2, 3, 4, 5], dmax=4)
        assert counts[1] == 5
        assert counts[2] == 0  # minimum distance rule: no double counting

    def test_no_sequential_pairs(self):
        counts = stride_counts([10, 20, 30], dmax=4)
        assert all(v == 0 for v in counts.values())

    def test_minimum_distance_selects_smallest_d(self):
        # 5 appears twice; the closer occurrence (distance 1) wins.
        counts = stride_counts([5, 99, 4, 5], dmax=4)
        assert counts[1] == 2  # pages 4 and 5
        assert counts[2] == 0

    def test_absolute_distance_counts_descending_access(self):
        """A descending sweep {4,3,2,1} still shows spatial locality."""
        counts = stride_counts([4, 3, 2, 1], dmax=4)
        assert counts[1] == 4

    def test_stride_beyond_dmax_ignored(self):
        counts = stride_counts([1, 9, 9, 9, 2], dmax=2)
        assert all(v == 0 for v in counts.values())
        counts = stride_counts([1, 9, 9, 9, 2], dmax=4)
        assert counts[4] == 2

    def test_dmax_validation(self):
        with pytest.raises(ValueError):
            stride_counts([1, 2], dmax=0)

    def test_empty_window(self):
        assert stride_counts([], dmax=4) == {1: 0, 2: 0, 3: 0, 4: 0}

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=25))
    def test_counts_bounded_by_window_length(self, pages):
        counts = stride_counts(pages, dmax=4)
        distinct = len(set(pages))
        for v in counts.values():
            assert 0 <= v <= distinct

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=2, max_value=20))
    def test_synthetic_interleaved_streams(self, d, length):
        """d interleaved sequential streams produce stride-d references."""
        base = [1000 * s for s in range(d)]
        pages = []
        for i in range(length):
            for s in range(d):
                pages.append(base[s] + i)
        counts = stride_counts(pages, dmax=4)
        # Every page of every stream participates in a stride-d pair.
        assert counts[d] == d * length
        for other in range(1, 5):
            if other != d:
                assert counts[other] == 0

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=25))
    def test_matches_bruteforce(self, pages):
        """Cross-check against a direct transcription of the definition."""
        dmax = 4
        expected: dict[int, set[int]] = {d: set() for d in range(1, dmax + 1)}
        for p, vpn in enumerate(pages):
            dists = [abs(q - p) for q, other in enumerate(pages) if other == vpn + 1]
            if not dists:
                continue
            d = min(dists)
            if 1 <= d <= dmax:
                expected[d].add(vpn)
                expected[d].add(vpn + 1)
        assert stride_counts(pages, dmax) == {d: len(s) for d, s in expected.items()}


class TestOutstandingStreams:
    def test_paper_example_section_3_4(self):
        """l=10, {13,27,7,8,14,8,3,15,4,5}: pivots are 16, 5, and 6;
        the {7,8} stream is no longer outstanding."""
        pages = [13, 27, 7, 8, 14, 8, 3, 15, 4, 5]
        streams = find_outstanding_streams(pages, dmax=4)
        pivots = {s.pivot for s in streams}
        assert pivots == {16, 5, 6}
        by_pivot = {s.pivot: s.stride for s in streams}
        assert by_pivot[16] == 3  # {14, 15}
        assert by_pivot[5] == 2  # {3, 4}
        assert by_pivot[6] == 1  # {4, 5}

    def test_old_stream_not_outstanding(self):
        # {7,8} at the start of a length-10 window: endpoint too old.
        pages = [7, 8] + [100 + i * 10 for i in range(8)]
        assert all(s.pivot != 9 for s in find_outstanding_streams(pages, dmax=4))

    def test_sequential_stream_is_outstanding(self):
        streams = find_outstanding_streams([1, 2, 3, 4], dmax=4)
        assert [s.pivot for s in streams] == [5]
        assert streams[0].stride == 1

    def test_duplicate_pivots_reported_once(self):
        # Two pairs ending in the same successor page.
        pages = [4, 9, 4, 9, 5]
        streams = find_outstanding_streams(pages, dmax=4)
        assert len([s for s in streams if s.pivot == 6]) == 1

    def test_backward_pairs_are_not_streams(self):
        """{5,4}: page 4's successor was referenced *before* it; no forward
        progress to extrapolate."""
        assert find_outstanding_streams([5, 4], dmax=4) == []

    def test_empty(self):
        assert find_outstanding_streams([], dmax=4) == []

    def test_deterministic_order(self):
        pages = [13, 27, 7, 8, 14, 8, 3, 15, 4, 5]
        a = find_outstanding_streams(pages, dmax=4)
        b = find_outstanding_streams(pages, dmax=4)
        assert a == b
        assert [s.end_index for s in a] == sorted(s.end_index for s in a)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=25))
    def test_streams_satisfy_definition(self, pages):
        n = len(pages)
        for s in find_outstanding_streams(pages, dmax=4):
            assert 1 <= s.stride <= 4
            assert s.end_index >= n - s.stride
            assert pages[s.end_index] + 1 == s.pivot
            p = s.end_index - s.stride
            assert pages[p] + 1 == pages[s.end_index]
