"""Table 1: problem and memory sizes of HPCC (paper section 5.1).

Regenerates the table at full scale, extended with each configuration's
page count and the master-page-table size AMPoM ships during the freeze.
"""

from __future__ import annotations

from repro.experiments.tables import table1
from repro.metrics.report import format_table

from ._common import emit


def bench_table1(benchmark):
    rows = benchmark.pedantic(lambda: table1(scale=1.0), rounds=1, iterations=1)
    text = format_table(
        ["kernel", "problem size", "memory (MB)", "data pages", "MPT bytes"],
        [[r.kernel, r.problem_size, r.memory_mb, r.data_pages, r.mpt_bytes] for r in rows],
    )
    emit("table1_hpcc_sizes", text)
    assert len(rows) == 18
    by = {(r.kernel, r.memory_mb): r for r in rows}
    # 575 MB is ~147k pages -> ~0.86 MB of MPT (paper: 6 B/page).
    assert by[("DGEMM", 575)].data_pages > 140_000
    assert by[("DGEMM", 575)].mpt_bytes == by[("DGEMM", 575)].data_pages * 6
