"""Leap's majority-trend stride prefetcher (PAPERS.md: "Effectively
Prefetching Remote Memory with Leap").

Leap replaces per-fault locality analysis with a cheap trend test over
the recent access history: the stride that a *strict majority* of the
last ``w`` page-to-page deltas agree on is the trend, found with one
Boyer-Moore majority-vote pass.  The detector looks at progressively
larger suffixes of the history (``SUFFIX_START``, doubling up to the
full window), so a fresh trend is picked up from the newest accesses
before the whole window has turned over.

Two departures from a literal port, both required by this simulator's
determinism discipline:

* **Hysteresis on trend flips.**  An established trend is only replaced
  after the *same* new stride wins the majority vote on
  ``hysteresis`` consecutive faults.  A single outlier access (one
  interleaved stream sample, one wild pointer chase) can never flip the
  trend, so the prefetch stream does not thrash on noise.
* **Degenerate-stride fallback.**  When no majority exists (random
  access) or the majority stride is 0 (a re-fault on the same page),
  Leap degrades to a fixed sequential read-ahead of ``fallback_pages``
  — the same posture AMPoM takes when it has no dependent streams.

The prefetcher is a pure function of its fault history: no RNG, no wall
clock, so identical fault streams produce identical prefetch streams —
the property the golden matrix and the arena determinism gate rely on.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..config import HardwareSpec
from ..errors import ConfigurationError
from .policy import LinkConditions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mem.residency import ResidencyTracker

#: Smallest suffix the majority vote considers; doubled until it covers
#: the full history window.
SUFFIX_START = 4


def majority_stride(deltas, start: int = SUFFIX_START) -> int | None:
    """The stride a strict majority of a recent suffix agrees on.

    Boyer-Moore majority vote over the last ``w`` deltas for ``w`` in
    ``start, 2*start, ...`` up to ``len(deltas)``; the first suffix with
    a verified strict majority (> w/2 occurrences) wins.  ``None`` means
    no suffix has a majority — the access stream has no dominant trend.
    """
    n = len(deltas)
    if n == 0:
        return None
    w = min(start, n)
    ordered = list(deltas)
    while True:
        suffix = ordered[n - w:]
        candidate, count = suffix[0], 0
        for d in suffix:
            if count == 0:
                candidate = d
            count += 1 if d == candidate else -1
        if 2 * suffix.count(candidate) > w:
            return candidate
        if w == n:
            return None
        w = min(w * 2, n)


class LeapPrefetcher:
    """Majority-trend stride detection with hysteresis and a read-ahead
    fallback; implements :class:`repro.core.policy.PrefetchPolicy`.

    Unlike AMPoM, Leap never consults the link (no RTT/bandwidth term in
    its window logic), so ``needs_conditions`` is False and the executor
    skips the oM_infoD snapshot entirely.
    """

    name = "leap"
    needs_conditions = False

    def __init__(
        self,
        hardware: HardwareSpec,
        address_limit: int,
        history: int = 32,
        prefetch_pages: int = 8,
        fallback_pages: int = 8,
        hysteresis: int = 2,
    ) -> None:
        if history < 2:
            raise ConfigurationError("leap needs a history of at least 2 accesses")
        if prefetch_pages < 1 or fallback_pages < 1:
            raise ConfigurationError("leap prefetch window sizes must be >= 1")
        if hysteresis < 1:
            raise ConfigurationError("leap hysteresis must be >= 1")
        self.address_limit = address_limit
        self.history = history
        self.prefetch_pages = prefetch_pages
        self.fallback_pages = fallback_pages
        self.hysteresis = hysteresis
        # One Boyer-Moore pass is O(history); AMPoM's reference pipeline
        # is O(lookback * dmax) = 80 window operations per fault, which
        # is what analysis_time_per_fault was calibrated against.
        self.analysis_time = hardware.analysis_time_per_fault * history / 80.0
        self.analyses = 0
        self._deltas: deque[int] = deque(maxlen=history - 1)
        self._last_vpn: int | None = None
        #: The established trend stride (None until the first majority).
        self.trend: int | None = None
        self._pending: int | None = None
        self._pending_votes = 0

    # ------------------------------------------------------------------
    def _update_trend(self, detected: int | None) -> None:
        if detected is None or detected == self.trend:
            # No new candidate this fault; a flip needs *consecutive*
            # confirmations, so any interruption restarts the count.
            self._pending = None
            self._pending_votes = 0
            return
        if self.trend is None:
            # First trend: adopt immediately, nothing to protect yet.
            self.trend = detected
            return
        if detected == self._pending:
            self._pending_votes += 1
        else:
            self._pending = detected
            self._pending_votes = 1
        if self._pending_votes >= self.hysteresis:
            self.trend = detected
            self._pending = None
            self._pending_votes = 0

    def on_fault(
        self,
        vpn: int,
        now: float,
        cpu_share: float,
        residency: "ResidencyTracker",
        conditions: LinkConditions | None,
    ) -> list[int]:
        self.analyses += 1
        if self._last_vpn is not None and vpn != self._last_vpn:
            self._deltas.append(vpn - self._last_vpn)
        self._last_vpn = vpn
        self._update_trend(majority_stride(self._deltas))

        stride = self.trend
        if stride is None or stride == 0:
            candidates = range(vpn + 1, vpn + 1 + self.fallback_pages)
        else:
            candidates = range(
                vpn + stride,
                vpn + stride * (self.prefetch_pages + 1),
                stride,
            )
        remote = residency.remote_set
        return [
            p
            for p in candidates
            if 0 <= p < self.address_limit and p != vpn and p in remote
        ]


__all__ = ["LeapPrefetcher", "SUFFIX_START", "majority_stride"]
