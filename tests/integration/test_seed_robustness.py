"""Robustness of the reproduced claims across random seeds.

RandomAccess and FFT traces are seeded; the headline percentages must not
hinge on one lucky stream.
"""

from __future__ import annotations

import pytest

from repro.cluster.runner import MigrationRun
from repro.experiments import figures
from repro.migration.ampom import AmpomMigration
from repro.migration.noprefetch import NoPrefetchMigration
from repro.units import mib
from repro.workloads.randomaccess import RandomAccessWorkload

SCALE = 1.0 / 16.0
SEEDS = (0, 1, 2, 3, 4)


def prevented_pct(kernel: str, mb: int, seed: int) -> float:
    def run(strategy):
        workload = figures.hpcc_workload(kernel, mb, scale=SCALE, seed=seed)
        return MigrationRun(
            workload, strategy, config=figures.scaled_config(SCALE)
        ).execute()

    ampom = run(AmpomMigration())
    nopf = run(NoPrefetchMigration())
    return 100.0 * (
        1 - ampom.counters.page_fault_requests / nopf.counters.page_fault_requests
    )


def test_randomaccess_prevention_stable_across_seeds():
    values = [prevented_pct("RandomAccess", 129, seed) for seed in SEEDS]
    assert all(60.0 < v < 95.0 for v in values), values
    assert max(values) - min(values) < 12.0, values


def test_fft_prevention_stable_across_seeds():
    values = [prevented_pct("FFT", 129, seed) for seed in SEEDS]
    assert all(v > 90.0 for v in values), values
    assert max(values) - min(values) < 5.0, values


def test_randomaccess_total_time_stable_across_seeds():
    totals = []
    for seed in SEEDS:
        w = RandomAccessWorkload(mib(16), seed=seed)
        totals.append(MigrationRun(w, AmpomMigration()).execute().total_time)
    spread = (max(totals) - min(totals)) / min(totals)
    assert spread < 0.05, totals


def test_different_seeds_produce_different_traces():
    a = MigrationRun(
        RandomAccessWorkload(mib(8), seed=0), NoPrefetchMigration()
    ).execute()
    b = MigrationRun(
        RandomAccessWorkload(mib(8), seed=1), NoPrefetchMigration()
    ).execute()
    assert a.total_time != pytest.approx(b.total_time, abs=1e-12) or (
        a.counters.as_dict() != b.counters.as_dict()
    )
