"""The migrant executor: runs a workload trace after migration.

The executor is a cooperative DES process that walks the workload's page
reference stream.  References to mapped pages accumulate CPU work at array
speed; a reference to any other page takes the fault path of Algorithm 1:

1. copy every prefetched page that has arrived into the address space;
2. record the fault in the policy's lookback window and run the
   dependent-zone analysis (charged as ``analysis`` time — figure 11);
3. send the paging request (demand page + prefetch list) to the page
   service; a demand request is figure 7's "page fault request";
4. block until the demanded page arrives (a page already on the wire only
   costs the residual delay — section 5.4's pipelining effect).

Every simulated second is attributed to exactly one
:class:`repro.metrics.timeline.TimeBudget` bucket; the integration tests
assert the identity ``wall == freeze + compute + stall + analysis + copy +
syscall``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..config import HardwareSpec, RetrySpec
from ..errors import MigrationError
from ..faults.log import FaultEventKind, FaultInjectionLog
from ..mem.fault import FaultKind
from ..mem.lru import LruPageCache
from ..metrics.counters import Counters
from ..metrics.eventlog import FaultLog
from ..metrics.timeline import TimeBudget
from ..node.infod import InfoDaemon
from ..node.node import Node
from ..obs.spans import MIGRANT_TRACK
from ..sim import SimProcess, Simulator, Timeout
from ..workloads.base import Syscall, TraceChunk, Workload
from .base import MigrationOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..check.invariants import InvariantChecker
    from ..obs import Observability


@dataclass(slots=True)
class ExecutionResult:
    """Everything measured about one migrated execution."""

    strategy: str
    workload: str
    memory_bytes: int
    freeze_time: float
    #: Wall time from resume to completion (excludes the freeze).
    run_time: float
    budget: TimeBudget
    counters: Counters
    #: Pages fetched from remote but never referenced (excess prefetching,
    #: the quantity section 5.6 argues AMPoM keeps small).
    wasted_pages: int = 0
    extra: dict[str, float] = field(default_factory=dict)
    #: Name of the prefetch policy this run resolved ("" when the scheme
    #: performs no remote paging, e.g. openMosix).
    prefetch_policy: str = ""

    @property
    def total_time(self) -> float:
        """Figure 6's quantity: freeze + post-migration execution."""
        return self.freeze_time + self.run_time

    def to_dict(self) -> dict:
        """JSON-serializable summary (used by the CLI's ``--json``).

        ``counters`` includes the reliability fields introduced by the
        fault-injection subsystem — ``retransmits``, ``request_timeouts``,
        ``prefetch_writeoffs`` (pages wasted to a deputy crash),
        ``deputy_crash_detections``, ``duplicate_pages_deduped``,
        ``pages_replayed``, and the wire-level ``messages_dropped`` /
        ``messages_duplicated`` / ``messages_delayed``.  All of them are
        zero on a fault-free run (see docs/FAULTS.md).
        """
        return {
            "strategy": self.strategy,
            "workload": self.workload,
            "prefetch_policy": self.prefetch_policy,
            "memory_bytes": self.memory_bytes,
            "freeze_time_s": self.freeze_time,
            "run_time_s": self.run_time,
            "total_time_s": self.total_time,
            "wasted_pages": self.wasted_pages,
            "budget": self.budget.as_dict(),
            "counters": self.counters.as_dict(),
            "extra": dict(self.extra),
        }


@dataclass(slots=True)
class ExecutorCarry:
    """Execution state handed from one leg of a multi-hop migration to the
    next (see :class:`repro.cluster.session.ScenarioRuntime`).

    The trace iterator, the time budget, and the counters are *shared*
    objects: the continuation executor keeps charging the same budget and
    resumes the trace exactly where the preempted leg stopped, so the
    final :class:`ExecutionResult` accounts for the whole journey.
    """

    trace: object
    budget: TimeBudget
    counters: Counters
    touched: set
    fetched: set
    window_wraps_seen: int


class MigrantExecutor:
    """Drives one workload trace through a migration outcome."""

    def __init__(
        self,
        sim: Simulator,
        workload: Workload,
        outcome: MigrationOutcome,
        node: Node,
        hardware: HardwareSpec,
        infod: InfoDaemon | None = None,
        track_touched: bool = True,
        capacity_pages: int | None = None,
        fault_log: FaultLog | None = None,
        retry: RetrySpec | None = None,
        retry_rng: np.random.Generator | None = None,
        injection_log: FaultInjectionLog | None = None,
        checker: "InvariantChecker | None" = None,
        obs: "Observability | None" = None,
        preempt_at: float | None = None,
        carry: ExecutorCarry | None = None,
        run_time_base: float = 0.0,
    ) -> None:
        self.sim = sim
        self.workload = workload
        self.outcome = outcome
        self.node = node
        self.hardware = hardware
        self.infod = infod
        self.track_touched = track_touched
        self.fault_log = fault_log
        self.injection_log = injection_log
        #: Optional repro.check invariant checker (pure observer); set by
        #: the runner when SimulationConfig.checks.enabled is true.
        self.checker = checker
        #: Optional repro.obs bundle (pure observers).  The tracer records
        #: one span per TimeBudget charge with the *identical* float
        #: duration at the identical code site, so per-bucket span sums
        #: reproduce the budget bit for bit (see docs/OBSERVABILITY.md).
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        self._obs_metrics = obs.metrics if obs is not None else None
        # Per-site span recorders: each budget-charge site interns its
        # (track, name, bucket) triple once and writes the tracer's ring
        # columns directly on every fault (see SpanTracer.span_site).
        tr = self._tracer
        if tr is not None:
            self._rec_compute = tr.span_site(MIGRANT_TRACK, "compute", "compute")
            self._rec_analysis = tr.span_site(MIGRANT_TRACK, "analysis", "analysis")
            self._rec_stall = tr.span_site(MIGRANT_TRACK, "stall", "stall", arg="vpn")
            self._rec_copy = tr.span_site(MIGRANT_TRACK, "copy", "copy", arg="pages")
            self._rec_fault_begin, self._rec_fault_end = tr.open_span_site(
                MIGRANT_TRACK, "fault", end_keys=("kind", "prefetch", "stall")
            )
            self._rec_demand_req = tr.instant_site(
                MIGRANT_TRACK, "demand_request", "vpn", "prefetch"
            )
            self._rec_prefetch_req = tr.instant_site(
                MIGRANT_TRACK, "prefetch_request", "pages"
            )
        else:
            self._rec_compute = None
            self._rec_analysis = None
            self._rec_stall = None
            self._rec_copy = None
            self._rec_fault_begin = None
            self._rec_fault_end = None
            self._rec_demand_req = None
            self._rec_prefetch_req = None
        # Histogram handles, resolved lazily on first observation so the
        # registry only ever contains histograms that actually recorded
        # (the per-fault path then skips the by-name lookup).
        self._h_stall = None
        self._h_prefetch = None
        self._h_zone = None
        self._h_locality = None

        # Reliable-protocol state.  ``retry`` arms a retransmission timer
        # on every demand request whose reply may be lost; it is only set
        # when a fault plan is active, so the fault-free path is untouched.
        self.retry = retry
        self._retry_rng = retry_rng
        self._reliable = retry is not None
        if self._reliable and not hasattr(outcome.page_service, "next_seq"):
            raise MigrationError(
                "fault injection requires a page service that supports "
                "sequence IDs (a deputy-backed scheme, not FFA)"
            )
        #: True while the migrant believes the deputy is down: prefetching
        #: is suppressed (demand-only paging) until a reply gets through.
        self._degraded = False
        self._await_stall = 0.0

        #: Optional whole-node hazard check ``f(now) -> None`` wired by the
        #: scenario runtime under a NodeFaultPlan.  Called between trace
        #: events; raises :class:`repro.errors.ProcessLostError` if a crash
        #: killed this process (its own node died mid-run, or its home node
        #: crashed — openMosix's home dependency).
        self.hazard = None
        #: Optional callback fired when the retry protocol concludes a
        #: remote server is dead (two consecutive demand timeouts).  The
        #: scenario runtime uses it to kill home-dependent processes and to
        #: chain-repair routes through dead transit deputies.
        self.on_crash_detect = None
        #: FaultKind of the fault currently being resolved, if a yield
        #: inside :meth:`_fault` is pending — lets the kill teardown tell
        #: the checker about a counted-but-unresolved fault.
        self._pending_fault = None

        #: Simulated time at which this leg yields the CPU for the next
        #: re-migration hop (``None`` = run the trace to completion).
        self.preempt_at = preempt_at
        #: True when the leg stopped at ``preempt_at`` with trace left.
        self.preempted = False
        self.run_time_base = run_time_base

        if carry is None:
            self.budget = TimeBudget()
            self.budget.freeze = outcome.freeze_time
            self.counters = Counters()
            self.counters.pages_migrated = outcome.pages_shipped
            self._trace = None
            self._touched: set[int] = set()
            self._fetched: set[int] = set()
            self._window_wraps_seen = 0
        else:
            # Continuation leg: keep charging the shared budget/counters and
            # resume the trace where the previous leg was preempted.  The
            # freeze bucket accumulates every hop's freeze.
            self.budget = carry.budget
            self.budget.freeze += outcome.freeze_time
            self.counters = carry.counters
            self.counters.pages_migrated += outcome.pages_shipped
            self._trace = carry.trace
            self._touched = carry.touched
            self._fetched = carry.fetched
            self._window_wraps_seen = carry.window_wraps_seen
        self.result: ExecutionResult | None = None

        self._last_fault_time = 0.0
        self._compute_since_fault = 0.0
        self._holds_cpu = False

        # Per-fault policy metadata and hot-path aliases, resolved once
        # (the outcome's fields and the policy never change during a run).
        policy = outcome.policy
        self._policy_needs_conditions = (
            getattr(policy, "needs_conditions", True) if policy is not None else False
        )
        self._policy_window = getattr(policy, "window", None)
        self._policy_traces = hasattr(policy, "last_trace")
        self._policy = policy
        self._analysis_time = policy.analysis_time if policy is not None else 0.0
        self._res = outcome.residency
        self._mpt = outcome.mpt
        self._service = outcome.page_service
        self._cpu = node.cpu

        # Optional destination-memory pressure model (the paper ignores
        # memory pressure; see DESIGN.md section 6).  Evicted pages are
        # written back to the origin node and can be re-fetched.
        self._lru: LruPageCache | None = None
        if capacity_pages is not None:
            self._lru = LruPageCache(capacity_pages)
            for vpn in sorted(outcome.residency.mapped):
                self._insert_resident(vpn)

    # ------------------------------------------------------------------
    def start(self) -> SimProcess:
        """Spawn the executor in the simulator; the process's result is an
        :class:`ExecutionResult`."""
        return self.sim.spawn(self._run(), name=f"migrant-{self.workload.name}")

    def carry_out(self) -> ExecutorCarry:
        """Package the preempted leg's state for the next hop's executor."""
        if not self.preempted:
            raise MigrationError("carry_out() is only valid after a preempted leg")
        return ExecutorCarry(
            trace=self._trace,
            budget=self.budget,
            counters=self.counters,
            touched=self._touched,
            fetched=self._fetched,
            window_wraps_seen=self._window_wraps_seen,
        )

    def discard_fetch(self, vpn: int) -> None:
        """Forget a fetched-but-written-off page (keeps the wasted-page
        accounting consistent when the runtime writes off lost prefetches
        at a re-migration boundary)."""
        self._fetched.discard(vpn)

    # ------------------------------------------------------------------
    # conditions for the prefetcher when no monitoring daemon is attached
    # ------------------------------------------------------------------
    def _static_conditions(self):
        from ..core.policy import LinkConditions

        service = self.outcome.page_service
        reply = getattr(service, "reply_channel", None)
        request = getattr(service, "request_channel", None)
        if reply is None or request is None:
            deputy = getattr(service, "deputy", None)
            reply = deputy.reply_channel if deputy is not None else None
        if reply is None or request is None:
            raise MigrationError(
                "prefetching needs either an InfoDaemon or a deputy-backed page service"
            )
        rtt = reply.latency_s + request.latency_s
        return LinkConditions(
            rtt_s=rtt,
            available_bw_bps=reply.bandwidth_bps,
            cpu_share=self.node.cpu.share(),
        )

    def _conditions(self):
        if self.infod is not None:
            return self.infod.conditions()
        return self._static_conditions()

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def _run(self):
        sim = self.sim
        res = self.outcome.residency
        mapped = res.mapped  # direct reference: the hot-path set
        cpu = self.node.cpu
        budget = self.budget
        tr = self._tracer
        # Traced-only clock reads below use ``sim._now`` directly: ``now``
        # is a trivial property over that attribute, and skipping the
        # property call keeps tracing overhead off the untraced path.
        rec_compute = self._rec_compute
        creates = self.workload.creates_pages
        start_time = sim.now
        self._last_fault_time = start_time
        preempt_at = self.preempt_at
        if self._trace is None:
            self._trace = iter(self.workload.trace())
        self._acquire_cpu()
        try:
            for event in self._trace:
                if isinstance(event, Syscall):
                    yield from self._syscall(event)
                else:
                    chunk: TraceChunk = event
                    if self.track_touched:
                        self._touched.update(np.unique(chunk.pages).tolist())
                    # Fast path: everything the trace can touch is mapped (not
                    # available under the memory-pressure model, which must see
                    # every reference to keep LRU recency).
                    if (
                        self._lru is None
                        and not creates
                        and not res.remote_set
                        and not res.in_flight_map
                        and not res.buffered_set
                    ):
                        yield from self._compute(chunk.total_compute)
                    else:
                        acc = 0.0
                        lru = self._lru
                        for vpn, work in zip(chunk.pages.tolist(), chunk.compute.tolist()):
                            if vpn in mapped:
                                if lru is not None:
                                    lru.touch(vpn)
                                acc += work
                                continue
                            if acc > 0.0:
                                # _compute, inlined: the fault path runs it before
                                # and after every fault, so the generator hop is
                                # worth spelling out.
                                wall = acc * cpu.stretch()
                                t0 = sim._now if tr is not None else 0.0
                                yield Timeout(wall)
                                budget.compute += wall
                                if rec_compute is not None:
                                    rec_compute(t0, wall)
                                cpu.charge(acc)
                                self._compute_since_fault += acc
                                acc = 0.0
                            yield from self._fault(vpn)
                            acc += work
                        if acc > 0.0:
                            wall = acc * cpu.stretch()
                            t0 = sim._now if tr is not None else 0.0
                            yield Timeout(wall)
                            budget.compute += wall
                            if rec_compute is not None:
                                rec_compute(t0, wall)
                            cpu.charge(acc)
                            self._compute_since_fault += acc
                # Whole-node crash check, same granularity as preemption:
                # a kill lands at the next trace-event boundary.
                if self.hazard is not None:
                    self.hazard(sim.now)
                # Re-migration point: the runtime asked this leg to stop once
                # the simulated clock passes preempt_at.  Checked between
                # trace events only — a hop never tears a chunk apart.
                if preempt_at is not None and sim.now >= preempt_at:
                    self.preempted = True
                    break
        finally:
            self._release_cpu()
        if self.preempted:
            return None
        run_time = self.run_time_base + (sim.now - start_time)
        self._collect_fault_stats()
        self.result = ExecutionResult(
            strategy=self.outcome.strategy,
            workload=self.workload.name,
            memory_bytes=self.workload.memory_bytes,
            freeze_time=self.budget.freeze,
            run_time=run_time,
            budget=self.budget,
            counters=self.counters,
            wasted_pages=len(self._fetched - self._touched) if self.track_touched else 0,
            extra=dict(self.outcome.extra),
            prefetch_policy=getattr(self.outcome.policy, "name", "") or "",
        )
        return self.result

    # ------------------------------------------------------------------
    # memory-pressure model
    # ------------------------------------------------------------------
    def _insert_resident(self, vpn: int) -> None:
        """Register a newly mapped page with the LRU; evict if over capacity.

        An evicted page is written back to the home node (it is dirty —
        every page of these workloads is) and both page tables are updated
        per section 2.2: the MPT entry flips to HOME and the HPT stores the
        copy again, so a later touch re-fetches it.
        """
        assert self._lru is not None
        victim = self._lru.insert(vpn)
        if victim is None:
            return
        res = self.outcome.residency
        res.unmap(victim)
        self.outcome.mpt.mark_home(victim)
        service = self.outcome.page_service
        self.counters.pages_evicted += 1
        writeback = getattr(service, "request_channel", None)
        arrival = self.sim.now
        if writeback is not None:
            # Write-behind: occupies the uplink but does not stall us.
            arrival = writeback.transfer_page(self.hardware.page_size, self.sim.now)
        if hasattr(service, "store_writeback"):
            # FFA: the file server, not the home node, is the backing
            # store; the page is requestable once the write-back lands.
            service.store_writeback(victim, arrival)
        else:
            self.outcome.hpt.store(victim)

    # ------------------------------------------------------------------
    def _acquire_cpu(self) -> None:
        if not self._holds_cpu:
            self.node.cpu.acquire()
            self._holds_cpu = True

    def _release_cpu(self) -> None:
        if self._holds_cpu:
            self.node.cpu.release()
            self._holds_cpu = False

    # ------------------------------------------------------------------
    def _compute(self, cpu_work: float):
        """Consume ``cpu_work`` seconds of CPU under the current load."""
        wall = cpu_work * self.node.cpu.stretch()
        rec = self._rec_compute
        t0 = self.sim._now if rec is not None else 0.0
        yield Timeout(wall)
        self.budget.compute += wall
        if rec is not None:
            rec(t0, wall)
        self.node.cpu.charge(cpu_work)
        self._compute_since_fault += cpu_work

    def _copy_buffered(self, res):
        """Map every buffered page; charge the copy cost."""
        copied = res.map_buffered()
        if not copied:
            return
        mpt = self._mpt
        for vpn in copied:
            mpt.mark_local(vpn)
            if self._lru is not None:
                self._insert_resident(vpn)
        self.counters.pages_copied += len(copied)
        wall = len(copied) * self.hardware.page_copy_time * self._cpu.stretch()
        rec = self._rec_copy
        t0 = self.sim._now if rec is not None else 0.0
        yield Timeout(wall)
        self.budget.copy += wall
        if rec is not None:
            rec(t0, wall, len(copied))

    def _fault(self, vpn: int):
        sim = self.sim
        res = self._res
        cpu = self._cpu
        now = sim.now
        tr = self._tracer
        if tr is not None:
            self._rec_fault_begin(now, "vpn", vpn)

        # C_i: CPU share consumed since the previous fault.
        elapsed = now - self._last_fault_time
        if elapsed > 1e-12:
            cpu_sample = min(self._compute_since_fault / elapsed, 1.0)
        else:
            cpu_sample = cpu.share()

        # Step 1 of Algorithm 1: copy arrived prefetched pages in.  The
        # copy generator is only entered when something is buffered — an
        # empty copy yields nothing, so skipping it is event-identical —
        # and arrivals can only be absorbed when something is in flight
        # (stale heap entries drain lazily on the next live absorb).
        if res.in_flight_map:
            res.absorb_arrivals(now)
            if res.buffered_set:
                yield from self._copy_buffered(res)
        elif res.buffered_set:
            yield from self._copy_buffered(res)

        # Classify the fault.  The counter is bumped at onset but the
        # checker only hears about the fault once it resolves; a node
        # crash can kill the process in between, so the in-progress kind
        # is published for the teardown path to reconcile.
        counters = self.counters
        if vpn in res.mapped:
            kind = FaultKind.MINOR_BUFFERED
            counters.minor_buffered_faults += 1
        elif vpn in res.in_flight_map:
            kind = FaultKind.IN_FLIGHT_WAIT
            counters.inflight_waits += 1
        elif vpn in res.remote_set:
            kind = FaultKind.MAJOR
            counters.major_faults += 1
        else:
            kind = FaultKind.MINOR_CREATE
            counters.create_faults += 1
        self._pending_fault = kind

        # Steps 2-4: record, analyse, decide the prefetch set.  A policy
        # that never reads the link snapshot (demand paging, fixed
        # read-ahead) spares the oM_infoD sampling call entirely.
        policy = self._policy
        prefetch: list[int] = []
        if policy is not None:
            conditions = self._conditions() if self._policy_needs_conditions else None
            prefetch = policy.on_fault(vpn, sim.now, cpu_sample, res, conditions)
            if self._degraded:
                # Deputy believed down: demand-only paging until a reply
                # gets through again (the zone quota the policy spent on
                # these pages is returned — they stay REMOTE).
                prefetch = []
            analysis_time = self._analysis_time
            if analysis_time > 0.0:
                wall = analysis_time * cpu.stretch()
                t0 = sim._now if tr is not None else 0.0
                yield Timeout(wall)
                self.budget.analysis += wall
                if tr is not None:
                    self._rec_analysis(t0, wall)
                cpu.charge(analysis_time)
            window = self._policy_window
            if (
                window is not None
                and self.infod is not None
                and window.wraps > self._window_wraps_seen
            ):
                self._window_wraps_seen = window.wraps
                self.infod.on_window_wrap()

        # No yields between here and the stall computation, so sim.now is
        # pinned for the rest of the request/resolve steps.
        t_req = sim.now
        self._last_fault_time = t_req
        self._compute_since_fault = 0.0

        # Step 5: send the paging request.
        service = self._service
        demand_seq: int | None = None
        demand_arrival = -1.0
        if kind is FaultKind.MAJOR:
            counters.demand_requests += 1
            counters.pages_demand_fetched += 1
            counters.pages_prefetched += len(prefetch)
            if tr is not None:
                self._rec_demand_req(t_req, vpn, len(prefetch))
            if self.checker is not None:
                self.checker.on_request([vpn], prefetch)
            if self._reliable:
                demand_seq = service.next_seq()
                arrivals = service.request([vpn], prefetch, t_req, seq=demand_seq)
                self._register_fetches(arrivals)
            else:
                arrivals = service.request([vpn], prefetch, t_req)
                fetched = self._fetched
                for page, t in arrivals.items():
                    res.start_fetch(page, t)
                    fetched.add(page)
                # The demanded page's arrival is already in hand; no yields
                # occur before the stall computation reads it.
                demand_arrival = arrivals[vpn]
        elif prefetch:
            counters.prefetch_requests += 1
            counters.pages_prefetched += len(prefetch)
            if tr is not None:
                self._rec_prefetch_req(t_req, len(prefetch))
            if self.checker is not None:
                self.checker.on_request([], prefetch)
            if self._reliable:
                arrivals = service.request([], prefetch, t_req, seq=service.next_seq())
                self._register_fetches(arrivals)
            else:
                arrivals = service.request([], prefetch, t_req)
                fetched = self._fetched
                for page, t in arrivals.items():
                    res.start_fetch(page, t)
                    fetched.add(page)

        # Step 6: resolve the faulting page.
        stall = 0.0
        if kind is FaultKind.MINOR_CREATE:
            res.map_created(vpn)
            self._mpt.record_creation(vpn)
            if self._lru is not None:
                self._insert_resident(vpn)
        elif kind in (FaultKind.MAJOR, FaultKind.IN_FLIGHT_WAIT):
            if self._reliable:
                yield from self._await_page(vpn, demand_seq)
                stall = self._await_stall
            else:
                arrival = demand_arrival if demand_arrival >= 0.0 else res.arrival_time(vpn)
                stall = arrival - t_req
                if stall < 0.0:
                    stall = 0.0
                if stall > 0.0:
                    self._release_cpu()
                    t0 = sim._now if tr is not None else 0.0
                    yield Timeout(stall)
                    self._acquire_cpu()
                    self.budget.stall += stall
                    if tr is not None:
                        self._rec_stall(t0, stall, vpn)
                res.absorb_arrivals(sim.now)
                if res.buffered_set:
                    yield from self._copy_buffered(res)
        self._pending_fault = None
        if self.fault_log is not None:
            self.fault_log.record(now, vpn, kind, len(prefetch), stall)
        if self.checker is not None:
            self.checker.on_fault(kind, vpn)
        if tr is not None:
            self._rec_fault_end(sim._now, kind.name, len(prefetch), stall)
        metrics = self._obs_metrics
        if metrics is not None:
            if kind in (FaultKind.MAJOR, FaultKind.IN_FLIGHT_WAIT):
                h = self._h_stall
                if h is None:
                    h = self._h_stall = metrics.histogram("stall_s")
                h.observe(stall)
            if self._policy is not None:
                h = self._h_prefetch
                if h is None:
                    h = self._h_prefetch = metrics.histogram(
                        "prefetch_request_pages"
                    )
                h.observe(float(len(prefetch)))
                last = self._policy.last_trace if self._policy_traces else None
                if last is not None:
                    h = self._h_zone
                    if h is None:
                        h = self._h_zone = metrics.histogram("zone_size_pages")
                        self._h_locality = metrics.histogram("locality_score")
                    h.observe(float(last.zone_size))
                    self._h_locality.observe(last.score)

    # ------------------------------------------------------------------
    # the reliable remote-paging protocol (fault-injection runs only)
    # ------------------------------------------------------------------
    def _log_event(self, kind: FaultEventKind, detail: str = "") -> None:
        if self.injection_log is not None:
            self.injection_log.record(self.sim.now, kind, channel="migrant", detail=detail)

    def _register_fetches(self, arrivals: dict[int, float]) -> None:
        """Fold a (possibly retransmitted/replayed) response's arrival
        times into the residency tracker.  An ``inf`` arrival means the
        request or reply was lost — the page is pending with no arrival in
        sight until a retransmission improves it."""
        res = self.outcome.residency
        for page, t in arrivals.items():
            if page in res.mapped or page in res.buffered:
                continue  # a replayed copy of a page we already have
            if page in res.in_flight:
                res.update_arrival(page, t)
            elif res.is_remote(page):
                res.start_fetch(page, t)
                self._fetched.add(page)

    def _await_page(self, vpn: int, seq: int | None):
        """Block until ``vpn`` is mapped, retransmitting on timeout.

        Arms ``RetrySpec.timeout_for(attempt)`` whenever the page has no
        finite arrival time (its request or reply was lost); each expiry
        retransmits a demand-only request with the same sequence ID so the
        deputy can recognise the duplicate.  Two consecutive expiries are
        taken as a deputy crash: outstanding lost prefetches are written
        off and the migrant degrades to demand-only paging until a reply
        arrives again.  Exhausting ``max_attempts`` raises
        :class:`MigrationError` instead of hanging the simulation.
        """
        sim = self.sim
        res = self.outcome.residency
        service = self.outcome.page_service
        retry = self.retry
        tr = self._tracer
        assert retry is not None
        self._await_stall = 0.0
        attempt = 0
        while True:
            res.absorb_arrivals(sim.now)
            if res.buffered_set:
                yield from self._copy_buffered(res)
            if vpn in res.mapped:
                break
            arrival = res.arrival_time(vpn) if vpn in res.in_flight else math.inf
            timed = math.isinf(arrival)
            if timed:
                u = float(self._retry_rng.random()) if self._retry_rng is not None else 0.0
                wait = retry.timeout_for(attempt, u)
            else:
                wait = max(arrival - sim.now, 0.0)
            if wait > 0.0:
                self._release_cpu()
                t0 = sim._now if tr is not None else 0.0
                yield Timeout(wait)
                self._acquire_cpu()
                self.budget.stall += wait
                if tr is not None:
                    tr.complete(
                        MIGRANT_TRACK, "stall", t0, wait, "stall",
                        vpn=vpn, attempt=attempt, timed=timed,
                    )
                self._await_stall += wait
            res.absorb_arrivals(sim.now)
            if res.buffered_set:
                yield from self._copy_buffered(res)
            if vpn in res.mapped:
                break
            if not timed:
                continue  # recompute: a retransmitted reply may be closer
            self.counters.request_timeouts += 1
            self._log_event(FaultEventKind.TIMEOUT, detail=f"vpn={vpn} attempt={attempt}")
            if tr is not None:
                tr.instant(MIGRANT_TRACK, "timeout", sim.now, vpn=vpn, attempt=attempt)
            attempt += 1
            if attempt > retry.max_attempts:
                raise MigrationError(
                    f"demand page {vpn} never arrived after {attempt} attempts "
                    f"(final timeout {wait:.4g}s, total wait {self._await_stall:.4g}s): "
                    "the link is too lossy or the deputy outage outlasts the retry "
                    "budget; raise RetrySpec.max_attempts/timeout_s or shorten the fault"
                )
            if attempt >= 2 and not self._degraded:
                self._enter_degraded(vpn)
            if attempt >= 2 and self.on_crash_detect is not None:
                # May raise ProcessLostError (home crashed) or repair the
                # route chain so the retransmission below reaches a
                # surviving deputy.
                self.on_crash_detect()
            if seq is None:
                seq = service.next_seq()
            self.counters.retransmits += 1
            self._log_event(
                FaultEventKind.RETRANSMIT, detail=f"vpn={vpn} seq={seq} attempt={attempt}"
            )
            if tr is not None:
                tr.instant(MIGRANT_TRACK, "retransmit", sim.now, vpn=vpn, seq=seq, attempt=attempt)
            if self.checker is not None:
                self.checker.on_request([vpn], [], retransmit=True)
            self._register_fetches(service.request([vpn], [], sim.now, seq=seq))
        if self._degraded:
            self._degraded = False
            self._log_event(FaultEventKind.RECOVER, detail=f"vpn={vpn}")

    def _enter_degraded(self, keep_vpn: int) -> None:
        """Assume the deputy crashed: write off prefetches that will never
        arrive (they return to REMOTE, re-requestable on demand) and stop
        prefetching until a reply gets through again."""
        self._degraded = True
        self.counters.deputy_crash_detections += 1
        self._log_event(FaultEventKind.CRASH_DETECT, detail=f"vpn={keep_vpn}")
        lost = self.outcome.residency.write_off_lost(keep=(keep_vpn,))
        if lost:
            self.counters.prefetch_writeoffs += len(lost)
            for page in lost:
                self._fetched.discard(page)
            self._log_event(FaultEventKind.WRITEOFF, detail=f"pages={len(lost)}")

    def _collect_fault_stats(self) -> None:
        """Fold deputy- and link-side fault statistics into the counters
        so results need no private attributes to report them."""
        c = self.counters
        service = self.outcome.page_service
        deputies = getattr(service, "deputies", None)
        if deputies is None:
            deputy = getattr(service, "deputy", None)
            deputies = [deputy] if deputy is not None else []
        for deputy in deputies:
            c.duplicate_pages_deduped += deputy.duplicate_page_requests
            c.pages_replayed += deputy.replayed_pages
        channels = set(getattr(service, "wire_channels", ()))
        request = getattr(service, "request_channel", None)
        if request is not None:
            channels.add(request)
        for deputy in deputies:
            channels.add(deputy.reply_channel)
        for channel in channels:
            c.messages_dropped += getattr(channel, "dropped_messages", 0)
            c.messages_dropped += getattr(channel, "flap_dropped_messages", 0)
            c.messages_duplicated += getattr(channel, "duplicated_messages", 0)
            c.messages_delayed += getattr(channel, "delayed_messages", 0)

    # ------------------------------------------------------------------
    def _syscall(self, syscall: Syscall):
        service = self.outcome.page_service
        tr = self._tracer
        self.counters.syscalls_forwarded += 1
        if not self._reliable:
            reply_at = service.forward_syscall(syscall, self.sim.now)
            wait = max(reply_at - self.sim.now, 0.0)
            self._release_cpu()
            t0 = self.sim.now if tr is not None else 0.0
            yield Timeout(wait)
            self._acquire_cpu()
            self.budget.add("syscall", wait)
            if tr is not None:
                tr.complete(MIGRANT_TRACK, "syscall", t0, wait, "syscall")
            return
        # Reliable forwarding: a lost request or reply (infinite arrival)
        # is retransmitted with the same seq, so the deputy re-sends the
        # reply without re-executing the call (exactly-once semantics).
        retry = self.retry
        assert retry is not None
        seq = service.next_seq()
        attempt = 0
        reply_at = service.forward_syscall(syscall, self.sim.now, seq=seq)
        while True:
            if math.isinf(reply_at):
                u = float(self._retry_rng.random()) if self._retry_rng is not None else 0.0
                wait = retry.timeout_for(attempt, u)
            else:
                wait = max(reply_at - self.sim.now, 0.0)
            if wait > 0.0:
                self._release_cpu()
                t0 = self.sim.now if tr is not None else 0.0
                yield Timeout(wait)
                self._acquire_cpu()
                self.budget.add("syscall", wait)
                if tr is not None:
                    tr.complete(
                        MIGRANT_TRACK, "syscall", t0, wait, "syscall", attempt=attempt
                    )
            if not math.isinf(reply_at):
                break
            self.counters.request_timeouts += 1
            self._log_event(FaultEventKind.TIMEOUT, detail=f"syscall seq={seq}")
            if tr is not None:
                tr.instant(MIGRANT_TRACK, "timeout", self.sim.now, syscall_seq=seq)
            attempt += 1
            if attempt > retry.max_attempts:
                raise MigrationError(
                    f"forwarded syscall reply never arrived after {attempt} attempts: "
                    "the link is too lossy or the deputy outage outlasts the retry budget"
                )
            if attempt >= 2 and self.on_crash_detect is not None:
                self.on_crash_detect()
            self.counters.retransmits += 1
            self._log_event(
                FaultEventKind.RETRANSMIT, detail=f"syscall seq={seq} attempt={attempt}"
            )
            reply_at = service.forward_syscall(syscall, self.sim.now, seq=seq)
