"""The deterministic parallel fan-out (repro.cluster.parallel)."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.cluster.parallel import JOBS_ENV, parallel_map, resolve_jobs

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# Worker functions must be module-level so the pool can pickle them.
def _square(x):
    return x * x


def _identify(x):
    """(input, worker pid) — exposes that a cell ran out-of-process."""
    import time

    time.sleep(0.01)  # let every worker claim at least one cell
    return (x, os.getpid())


def _explode(x):
    raise ValueError(f"boom on {x}")


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_variable_drives_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_count_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_auto_means_cpu_count(self):
        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        assert resolve_jobs("AUTO") == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-4) == (os.cpu_count() or 1)

    def test_numeric_string(self):
        assert resolve_jobs("5") == 5

    def test_garbage_string_raises(self):
        with pytest.raises(ValueError):
            resolve_jobs("many")


class TestParallelMap:
    def test_sequential_fallback(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]

    def test_accepts_any_iterable(self):
        assert parallel_map(_square, range(4), jobs=1) == [0, 1, 4, 9]

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_parallel_equals_sequential(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=4) == [
            _square(i) for i in items
        ]

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_results_in_input_order_across_workers(self):
        results = parallel_map(_identify, list(range(16)), jobs=4)
        assert [x for x, _ in results] == list(range(16))
        # The work really left this process (fanning to >1 worker is
        # scheduler-dependent and not asserted).
        assert os.getpid() not in {pid for _, pid in results}

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_explode, [1, 2, 3], jobs=2)

    def test_worker_exception_propagates_sequentially(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_explode, [1], jobs=1)


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestGoldenParallelism:
    """Parallel golden runs are byte-identical to sequential ones."""

    def test_record_byte_identical(self, tmp_path):
        from repro.check.golden import SCENARIOS, record_scenarios

        fast = [SCENARIOS[0], SCENARIOS[4], SCENARIOS[5]]
        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        record_scenarios(seq_dir, fast, jobs=1)
        record_scenarios(par_dir, fast, jobs=3)
        for s in fast:
            name = f"{s.name}.jsonl"
            assert (par_dir / name).read_bytes() == (seq_dir / name).read_bytes()

    def test_diff_clean_in_parallel(self, tmp_path):
        from repro.check.golden import SCENARIOS, diff_scenarios, record_scenarios

        fast = [SCENARIOS[0], SCENARIOS[4]]
        record_scenarios(tmp_path, fast, jobs=1)
        assert diff_scenarios(tmp_path, fast, jobs=2) == []
