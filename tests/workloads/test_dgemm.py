"""Unit tests for the DGEMM trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import mib
from repro.workloads.dgemm import DgemmWorkload


def test_three_matrices():
    w = DgemmWorkload(mib(3))
    space = w.setup()
    for name in ("A", "B", "C"):
        assert space.region(name).n_pages == w.pages_per_matrix


def test_b_is_reswept_per_panel():
    w = DgemmWorkload(mib(3), panels=4)
    w.setup()
    b = w.address_space.region("B")
    refs = np.concatenate([c.pages for c in w.trace()])
    b_refs = refs[(refs >= b.start_page) & (refs < b.end_page)]
    # B visited panels times in full.
    assert len(b_refs) == 4 * w.pages_per_matrix


def test_a_and_c_swept_once():
    w = DgemmWorkload(mib(3), panels=4)
    w.setup()
    refs = np.concatenate([c.pages for c in w.trace()])
    for name in ("A", "C"):
        region = w.address_space.region(name)
        in_region = refs[(refs >= region.start_page) & (refs < region.end_page)]
        assert len(in_region) == w.pages_per_matrix
        assert len(np.unique(in_region)) == w.pages_per_matrix


def test_panel_pages_are_sequential():
    w = DgemmWorkload(mib(3), panels=4, chunk_pages=10_000)
    w.setup()
    first = next(iter(w.trace()))
    diffs = np.diff(first.pages)
    assert np.all(diffs == 1)


def test_explicit_panels_override():
    w = DgemmWorkload(mib(3), panels=7)
    assert w.panels == 7


def test_panels_derived_from_block_rows():
    w = DgemmWorkload(mib(3), block_rows=64)
    assert w.panels == -(-w.n // 64)


def test_compute_estimate_matches_trace():
    w = DgemmWorkload(mib(2), panels=3)
    w.setup()
    traced = sum(c.total_compute for c in w.trace())
    assert w.total_compute_estimate() == pytest.approx(traced, rel=0.05)


def test_validation():
    with pytest.raises(ConfigurationError):
        DgemmWorkload(mib(1), panels=0)
    with pytest.raises(ConfigurationError):
        DgemmWorkload(mib(1), block_rows=0)
