"""Estimators backing the oM_infoD daemon's network measurements.

The paper (section 4) measures:

* round-trip time ``t0`` — "how long it would take to receive an
  acknowledgement from a remote node after a load update is sent out";
* available bandwidth — "a comparison of the current and past values of the
  'RX/TX bytes' fields outputted by /sbin/ifconfig".

Both are *measurements of a possibly loaded link*, which is what makes
AMPoM prefetch more aggressively when the network is busy: a saturated
channel inflates the measured RTT and deflates the available bandwidth,
growing the prefetch horizon ``t`` in eq. 3.
"""

from __future__ import annotations

from ..errors import NetworkError
from .link import Direction


class RttEstimator:
    """Exponentially smoothed round-trip time estimate."""

    def __init__(self, smoothing: float = 0.5, initial: float | None = None) -> None:
        if not (0.0 < smoothing <= 1.0):
            raise NetworkError(f"smoothing must be in (0, 1]: {smoothing}")
        self.smoothing = smoothing
        self._estimate = initial

    @property
    def estimate(self) -> float | None:
        return self._estimate

    def observe(self, rtt: float) -> float:
        """Fold one measured round trip into the estimate."""
        if rtt < 0:
            raise NetworkError(f"rtt must be non-negative: {rtt}")
        if self._estimate is None:
            self._estimate = rtt
        else:
            a = self.smoothing
            self._estimate = a * rtt + (1.0 - a) * self._estimate
        return self._estimate


class BandwidthEstimator:
    """Available-bandwidth estimate from interface byte-counter deltas.

    ``observe(t)`` reads the simulated TX counter of the monitored
    direction (the home -> migrant channel that carries page traffic),
    computes the throughput since the previous read, and reports
    ``capacity - used`` clamped to ``min_fraction * capacity``.
    """

    def __init__(
        self,
        direction: Direction,
        min_fraction: float = 0.05,
        smoothing: float = 0.5,
    ) -> None:
        if not (0.0 < min_fraction <= 1.0):
            raise NetworkError(f"min_fraction must be in (0, 1]: {min_fraction}")
        self.direction = direction
        self.min_fraction = min_fraction
        self.smoothing = smoothing
        self._last_time: float | None = None
        self._last_bytes = 0.0
        self._available: float | None = None

    @property
    def available_bps(self) -> float:
        """Current available-bandwidth estimate (defaults to capacity)."""
        if self._available is None:
            return self.direction.bandwidth_bps
        return self._available

    def observe(self, now: float) -> float:
        """Sample the TX counter at ``now`` and update the estimate."""
        counter = self.direction.bytes_sent_by(now)
        if self._last_time is not None and now > self._last_time:
            used = (counter - self._last_bytes) / (now - self._last_time)
            capacity = self.direction.bandwidth_bps
            floor = self.min_fraction * capacity
            fresh = max(capacity - used, floor)
            if self._available is None:
                self._available = fresh
            else:
                a = self.smoothing
                self._available = a * fresh + (1.0 - a) * self._available
        self._last_time = now
        self._last_bytes = counter
        return self.available_bps
