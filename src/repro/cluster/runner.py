"""End-to-end migration experiment driver.

Reproduces the paper's experimental procedure (section 5.1): the process
allocates its memory on the home node (every data page dirty), migration is
initiated immediately, and the kernel then executes to completion on the
destination while its faults are served remotely.

:class:`MigrationRun` is a thin compatibility wrapper: it builds the
classic two-node :class:`~repro.cluster.topology.ScenarioSpec` via
:func:`~repro.cluster.topology.two_node_spec` and delegates everything —
node, link, fault, and daemon wiring included — to
:class:`~repro.cluster.session.ScenarioRuntime`.

Example
-------
>>> from repro.cluster import MigrationRun
>>> from repro.migration import AmpomMigration
>>> from repro.workloads import StreamWorkload
>>> from repro.units import mib
>>> run = MigrationRun(StreamWorkload(mib(8), iterations=1), AmpomMigration())
>>> result = run.execute()
>>> result.freeze_time < 0.2
True
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import SimulationConfig
from ..errors import MigrationError
from ..migration.base import MigrationOutcome, MigrationStrategy
from ..metrics.eventlog import FaultLog
from ..migration.executor import ExecutionResult
from ..workloads.base import Workload
from .session import ScenarioRuntime
from .topology import DEST, FILE_SERVER, HOME, two_node_spec

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Observability

__all__ = ["DEST", "FILE_SERVER", "HOME", "MigrationRun"]


class MigrationRun:
    """One workload, one migration strategy, one measured execution."""

    def __init__(
        self,
        workload: Workload,
        strategy: MigrationStrategy,
        config: SimulationConfig | None = None,
        with_infod: bool = True,
        shaped_bandwidth_bps: float | None = None,
        shaped_latency_s: float | None = None,
        max_events: int | None = None,
        capacity_pages: int | None = None,
        fault_log: "FaultLog | None" = None,
        obs: "Observability | None" = None,
    ) -> None:
        self.workload = workload
        self.strategy = strategy
        self.with_infod = with_infod
        self.shaped_bandwidth_bps = shaped_bandwidth_bps
        self.shaped_latency_s = shaped_latency_s
        self.max_events = max_events
        #: Optional destination RAM limit (pages); enables the LRU
        #: memory-pressure model of the executor.
        self.capacity_pages = capacity_pages
        #: Optional per-fault event log (see repro.metrics.eventlog).
        self.fault_log = fault_log
        self._runtime = ScenarioRuntime(
            two_node_spec(
                workload,
                strategy,
                config=config,
                with_infod=with_infod,
                shaped_bandwidth_bps=shaped_bandwidth_bps,
                shaped_latency_s=shaped_latency_s,
                max_events=max_events,
                capacity_pages=capacity_pages,
                fault_log=fault_log,
            ),
            obs=obs,
        )

    # -- delegated state -------------------------------------------------
    @property
    def config(self) -> SimulationConfig:
        return self._runtime.config

    @property
    def obs(self):
        return self._runtime.obs

    @property
    def sim(self):
        return self._runtime.sim

    @property
    def cluster(self):
        return self._runtime.cluster

    @property
    def fault_plan(self):
        return self._runtime.fault_plan

    @property
    def injection_log(self):
        return self._runtime.injection_log

    @property
    def checker(self):
        """The attached invariant checker when config.checks.enabled."""
        return self._runtime.checkers[0]

    @property
    def infod(self):
        return self._runtime.migrant_infods[0]

    @property
    def outcome(self) -> MigrationOutcome | None:
        return self._runtime.outcomes[0]

    @property
    def result(self) -> ExecutionResult | None:
        return self._runtime.results[0]

    # --------------------------------------------------------------------
    def measure_freeze(self) -> MigrationOutcome:
        """Perform only the migration freeze (no trace execution).

        Figure 5 needs nothing but freeze times, which depend on the
        address-space size and the link — not on the trace — so this runs
        at full paper scale in milliseconds of wall time.
        """
        if self.result is not None or self.outcome is not None:
            raise MigrationError("MigrationRun objects are single-use")
        return self._runtime.measure_freeze(0)

    def execute(self) -> ExecutionResult:
        """Run the whole scenario; returns the measured result."""
        if self._runtime.executed or self.outcome is not None:
            raise MigrationError("MigrationRun objects are single-use")
        return self._runtime.execute()[0]
