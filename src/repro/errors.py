"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Raised for invalid operations on the discrete-event kernel."""


class NetworkError(ReproError):
    """Raised for invalid network topology or transfer requests."""


class MemoryStateError(ReproError):
    """Raised when a page-residency transition is illegal (e.g. mapping a
    page that is already mapped, or fetching a page the origin no longer
    holds)."""


class MigrationError(ReproError):
    """Raised when a migration cannot be performed (e.g. migrating a
    process that is already remote)."""


class ConfigurationError(ReproError):
    """Raised for inconsistent user-supplied configuration."""


class FaultInjectionError(ReproError):
    """Raised for invalid use of the fault-injection subsystem (e.g.
    wrapping a link that already carried traffic, or injecting faults
    into a scheme whose page service cannot retransmit)."""
